package runtime

// Parallel inter-op plan scheduler.
//
// A compiled Plan carries, besides its sequential schedule, the
// dependency-counting structure of a ready-queue scheduler: per-step
// successor lists and in-degrees over four edge classes —
//
//   - data edges (an op waits for its inputs);
//   - variable hazard edges (every access to a node a graph.Mutator
//     rewrites is serialized in schedule order, so gradient kernels
//     never race an in-place optimizer update and replay reads the
//     same values sequential execution would);
//   - the serial Impure lane (stateful/RNG ops — random sampling,
//     dropout's mask handoff, optimizer slot state — are chained in
//     schedule order, which keeps WithSeed replay bit-identical for
//     any worker count);
//   - arena anti-dependency edges (a buffer's next writer waits for
//     the previous holder and all of its readers to retire —
//     completion-count gating of the liveness pass's slot reuse).
//
// runParallel drains the ready queue with N worker goroutines. Each
// worker owns a private ExecContext (its own tensor.Pool, so kernel
// scratch space and timing accumulators stay goroutine-confined); the
// RNG is deliberately shared, protected by the serial Impure lane.
// Completion releases successors via atomic in-degree decrements; the
// channel hand-off plus the atomics establish the happens-before
// edges that make value propagation race-free.
//
// Timing follows the package's simulation philosophy: N simulated
// worker lanes each keep a clock, an op is assigned the lane that can
// start it earliest (list scheduling) at max(inputs' simulated
// finish, lane free), and the run's simulated makespan — not the sum
// of op durations — advances the session clock. Lanes are modeled
// rather than tied to host goroutines so the reported schedule
// reflects the configured width even on a single-core host, exactly
// as tensor.Pool models intra-op workers. Trace events record the
// lane, the measured wall time, and the critical-path finish, from
// which internal/profiling derives achieved and achievable inter-op
// speedup per workload.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// runParallel executes the plan with s.interOp worker goroutines. It
// must only be called with plan.nOps > 1 and s.interOp > 1.
//
// On error the scheduler stops promptly, but independent operations
// already released — or in flight on other workers — may still
// execute before Run returns, so (unlike the sequential driver, which
// stops at the first error) variable state after a failed parallel
// Run is indeterminate. Successful Runs are bit-identical to
// sequential execution.
func (s *Session) runParallel(plan *Plan, feeds Feeds) error {
	if err := resolveNonOps(plan, feeds); err != nil {
		return err
	}
	values := plan.values

	workers := s.interOp
	if workers > plan.nOps {
		workers = plan.nOps
	}
	wctx := s.workerContexts(workers)
	guard := s.arena.Guard()

	indeg := plan.indegRun
	copy(indeg, plan.indeg)
	durs := plan.durs
	walls := plan.walls
	for i := range durs {
		durs[i] = 0
		walls[i] = 0
	}

	// The queue is buffered to the op count, so releasing successors
	// never blocks and abandoned entries on the error path leak
	// nothing past the Run call.
	ready := make(chan int32, plan.nOps)
	for i := range plan.steps {
		if plan.steps[i].kind == graph.KindOp && indeg[i] == 0 {
			ready <- int32(i)
		}
	}

	var (
		remaining = int32(plan.nOps)
		stop      = make(chan struct{})
		stopOnce  sync.Once
		mu        sync.Mutex // first error/panic
		firstErr  error
		panicVal  any
		wg        sync.WaitGroup
	)
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := wctx[w]
			for {
				// Prefer stopping over draining further ready work
				// once an error has halted the run.
				select {
				case <-stop:
					return
				default:
				}
				var i int32
				select {
				case <-stop:
					return
				case i = <-ready:
				}
				st := &plan.steps[i]
				in := st.in
				for j, p := range st.ins {
					in[j] = values[p]
				}
				var out *tensor.Tensor
				var dur, wall time.Duration
				var err error
				func() {
					// An op panic must not kill the worker's process;
					// it is re-raised on the calling goroutine below,
					// preserving sequential Run semantics.
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							if panicVal == nil {
								panicVal = p
							}
							mu.Unlock()
							err = fmt.Errorf("panic: %v", p)
						}
					}()
					t0 := time.Now()
					out, dur, err = s.execStep(ctx, st, in, guard)
					wall = time.Since(t0)
				}()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("runtime: %v: %w", st.node, err)
					}
					mu.Unlock()
					halt()
					return
				}
				values[i] = out
				durs[i] = dur
				walls[i] = wall

				for _, sc := range plan.succs[i] {
					if atomic.AddInt32(&indeg[sc], -1) == 0 {
						ready <- sc
					}
				}
				if atomic.AddInt32(&remaining, -1) == 0 {
					halt()
				}
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if firstErr != nil {
		return firstErr
	}
	s.simulateSchedule(plan, workers)
	return nil
}

// simulateSchedule computes the run's simulated parallel timeline
// after execution: list scheduling of the measured op durations over
// `workers` modeled lanes, in schedule order, constrained by the
// plan's full scheduling edge set (data, hazard, serial-lane and
// anti-dependency edges) — the same constraints the real scheduler
// enforces, so the modeled makespan is always a schedule the
// determinism contract permits. Decoupling the model from host
// goroutine interleaving makes the reported makespan, lane assignment
// and critical path deterministic given the durations (so a fully
// modeled device, like the roofline GPU, reproduces its profile
// exactly), and it reflects the configured width even on a
// single-core host — the same philosophy as tensor.Pool's intra-op
// model. Trace events are emitted in schedule order; the session
// clock advances by the makespan.
func (s *Session) simulateSchedule(plan *Plan, workers int) {
	finish := plan.finish
	cp := plan.cp
	for i := range finish {
		finish[i] = 0
		cp[i] = 0
	}
	lanes := make([]time.Duration, workers)
	base := s.clock
	var makespan time.Duration
	for i := range plan.steps {
		st := &plan.steps[i]
		if st.kind != graph.KindOp {
			continue
		}
		dur := plan.durs[i]
		var rdy, cpIn time.Duration
		for _, p := range plan.preds[i] {
			if f := finish[p]; f > rdy {
				rdy = f
			}
		}
		// Critical path over semantic constraints only, so the
		// achievable bound does not vary with this plan's (width-
		// dependent) buffer assignment.
		for _, p := range plan.predsCP[i] {
			if c := cp[p]; c > cpIn {
				cpIn = c
			}
		}
		lane := 0
		for l := 1; l < len(lanes); l++ {
			if lanes[l] < lanes[lane] {
				lane = l
			}
		}
		start := rdy
		if lanes[lane] > start {
			start = lanes[lane]
		}
		fin := start + dur
		lanes[lane] = fin
		finish[i] = fin
		cp[i] = cpIn + dur
		if fin > makespan {
			makespan = fin
		}
		if s.traceOn {
			s.trace = append(s.trace, Event{
				Node: st.node, Op: st.node.OpName(), Class: st.node.Op().Class(),
				Start: base + start, Dur: dur, Step: s.step,
				Worker: lane, Wall: plan.walls[i], CP: cp[i],
			})
		}
	}
	s.clock = base + makespan
}

// workerContexts returns n per-worker execution contexts, creating
// them on first use and syncing the run-scoped fields from the
// session context. Each worker owns a distinct tensor.Pool so kernel
// scratch buffers and timing accumulators stay goroutine-confined;
// the RNG pointer is shared deliberately — the plan's serial Impure
// lane guarantees at most one RNG consumer runs at a time, in
// schedule order, so WithSeed replay matches sequential execution.
func (s *Session) workerContexts(n int) []*graph.ExecContext {
	for len(s.wctx) < n {
		s.wctx = append(s.wctx, &graph.ExecContext{Pool: tensor.NewPool(s.ctx.Pool.Workers())})
	}
	out := s.wctx[:n]
	for _, c := range out {
		c.Pool.SetWorkers(s.ctx.Pool.Workers())
		c.RNG = s.ctx.RNG
		c.Training = s.ctx.Training
		c.Step = s.ctx.Step
	}
	return out
}
