package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Checkpointing: serialize a graph's variables so trained models can
// be saved and restored — the capability a downstream user of the
// workload suite needs to reuse trained parameters.
//
// Format (little-endian):
//
//	magic "FTHM" | uint32 version | uint32 count |
//	repeat: uint32 nameLen | name | uint32 rank | dims... |
//	        float32 data...

const (
	checkpointMagic   = "FTHM"
	checkpointVersion = 1
)

// SaveCheckpoint writes every variable of g (name, shape, data).
// Variable names must be unique; models name parameters by layer.
func SaveCheckpoint(w io.Writer, g *graph.Graph) error {
	vars := g.Variables()
	names := map[string]bool{}
	for _, v := range vars {
		if names[v.Name()] {
			return fmt.Errorf("runtime: duplicate variable name %q", v.Name())
		}
		names[v.Name()] = true
	}
	if _, err := w.Write([]byte(checkpointMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(checkpointVersion)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(vars))); err != nil {
		return err
	}
	for _, v := range vars {
		name := []byte(v.Name())
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write(name); err != nil {
			return err
		}
		shape := v.Shape()
		if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		data := v.Value().Data()
		buf := make([]byte, 4*len(data))
		for i, f := range data {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(f))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint restores variables into g by name. Every variable in
// the checkpoint must exist in g with a matching shape; g may not
// contain extra variables unless allowMissing is true.
func LoadCheckpoint(r io.Reader, g *graph.Graph, allowMissing bool) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("runtime: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("runtime: not a checkpoint file (magic %q)", magic)
	}
	var version, count uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != checkpointVersion {
		return fmt.Errorf("runtime: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	byName := map[string]*graph.Node{}
	for _, v := range g.Variables() {
		byName[v.Name()] = v
	}
	restored := map[string]bool{}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		shape := make([]int, rank)
		size := 1
		for j := range shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			shape[j] = int(d)
			size *= int(d)
		}
		buf := make([]byte, 4*size)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		v, ok := byName[string(name)]
		if !ok {
			return fmt.Errorf("runtime: checkpoint variable %q not in graph", name)
		}
		if !tensor.SameShape(v.Shape(), shape) {
			return fmt.Errorf("runtime: variable %q shape %v != checkpoint %v", name, v.Shape(), shape)
		}
		data := v.Value().Data()
		for j := range data {
			data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
		restored[string(name)] = true
	}
	if !allowMissing {
		for name := range byName {
			if !restored[name] {
				return fmt.Errorf("runtime: graph variable %q missing from checkpoint", name)
			}
		}
	}
	return nil
}
