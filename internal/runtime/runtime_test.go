package runtime

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func buildAffine(t *testing.T) (*graph.Graph, *graph.Node, *graph.Node, *graph.Node) {
	t.Helper()
	g := graph.New()
	x := g.Placeholder("x", 2, 3)
	w := g.Variable("w", tensor.Ones(3, 4))
	b := g.Variable("b", tensor.Ones(4))
	y := ops.Add(ops.MatMul(x, w), b)
	return g, x, y, w
}

func TestSessionRunBasic(t *testing.T) {
	g, x, y, _ := buildAffine(t)
	s := NewSession(g)
	in := tensor.Ones(2, 3)
	out, err := s.Run([]*graph.Node{y}, Feeds{x: in})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out[0].Data() {
		if v != 4 { // 3·1 + 1
			t.Fatalf("affine output wrong: %v", out[0].Data())
		}
	}
	if s.Step() != 1 {
		t.Fatal("step counter should advance")
	}
}

func TestSessionMissingFeed(t *testing.T) {
	g, _, y, _ := buildAffine(t)
	s := NewSession(g)
	if _, err := s.Run([]*graph.Node{y}, nil); err == nil {
		t.Fatal("expected missing-feed error")
	}
}

func TestSessionFeedShapeMismatch(t *testing.T) {
	g, x, y, _ := buildAffine(t)
	s := NewSession(g)
	if _, err := s.Run([]*graph.Node{y}, Feeds{x: tensor.Ones(5, 5)}); err == nil {
		t.Fatal("expected feed shape error")
	}
}

func TestSessionTraceRecordsOps(t *testing.T) {
	g, x, y, _ := buildAffine(t)
	s := NewSession(g, WithTrace())
	s.MustRun([]*graph.Node{y}, Feeds{x: tensor.Ones(2, 3)})
	tr := s.Trace()
	if len(tr) != 2 {
		t.Fatalf("expected 2 op events (MatMul, Add), got %d", len(tr))
	}
	if tr[0].Op != "MatMul" || tr[0].Class != graph.ClassMatrix {
		t.Fatalf("first event %v", tr[0])
	}
	if tr[1].Op != "Add" {
		t.Fatalf("second event %v", tr[1])
	}
	// Timeline is cumulative and non-overlapping.
	if tr[1].Start < tr[0].Start+tr[0].Dur {
		t.Fatal("events must not overlap on the simulated timeline")
	}
	if s.SimTime() != tr[1].Start+tr[1].Dur {
		t.Fatal("sim clock should equal end of last event")
	}
	s.ResetTrace()
	if len(s.Trace()) != 0 || s.SimTime() != 0 {
		t.Fatal("ResetTrace should clear events and clock")
	}
}

func TestSessionNoTraceByDefault(t *testing.T) {
	g, x, y, _ := buildAffine(t)
	s := NewSession(g)
	s.MustRun([]*graph.Node{y}, Feeds{x: tensor.Ones(2, 3)})
	if s.Trace() != nil {
		t.Fatal("trace should be nil when not enabled")
	}
}

func TestSessionVariableMutationPersists(t *testing.T) {
	g := graph.New()
	v := g.Variable("v", tensor.New(2))
	grad := g.Const("g", tensor.Ones(2))
	up := ops.ApplySGD(v, grad, 1)
	s := NewSession(g)
	s.MustRun([]*graph.Node{up}, nil)
	s.MustRun([]*graph.Node{up}, nil)
	if v.Value().Data()[0] != -2 {
		t.Fatalf("variable should accumulate updates, got %v", v.Value().Data())
	}
}

func TestGPUDeviceModeledTiming(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.Ones(64, 64))
	b := g.Const("b", tensor.Ones(64, 64))
	mm := ops.MatMul(a, b)
	small := ops.Add(g.Const("s1", tensor.Ones(2)), g.Const("s2", tensor.Ones(2)))

	gpu := NewGTX960()
	s := NewSession(g, WithDevice(gpu), WithTrace())
	s.MustRun([]*graph.Node{mm, small}, nil)
	tr := s.Trace()
	if len(tr) != 2 {
		t.Fatalf("expected 2 events, got %d", len(tr))
	}
	var mmDur, addDur time.Duration
	for _, e := range tr {
		switch e.Op {
		case "MatMul":
			mmDur = e.Dur
		case "Add":
			addDur = e.Dur
		}
	}
	if mmDur <= addDur {
		t.Fatalf("64×64 MatMul (%v) should be modeled slower than tiny Add (%v)", mmDur, addDur)
	}
	if addDur < gpu.Launch {
		t.Fatal("every GPU op pays at least the launch overhead")
	}
	// Modeled time must be deterministic.
	s2 := NewSession(g, WithDevice(NewGTX960()), WithTrace())
	s2.MustRun([]*graph.Node{mm, small}, nil)
	if s2.Trace()[0].Dur != tr[0].Dur {
		t.Fatal("GPU model must be deterministic")
	}
}

func TestGPUFasterThanCPUOnBigMatMul(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.Ones(128, 128))
	b := g.Const("b", tensor.Ones(128, 128))
	mm := ops.MatMul(a, b)

	cpu := NewSession(g, WithTrace())
	cpu.MustRun([]*graph.Node{mm}, nil)
	gpu := NewSession(g, WithDevice(NewGTX960()), WithTrace())
	gpu.MustRun([]*graph.Node{mm}, nil)
	if gpu.Trace()[0].Dur >= cpu.Trace()[0].Dur {
		t.Fatalf("modeled GPU (%v) should beat pure-Go CPU (%v) on a 128³ matmul",
			gpu.Trace()[0].Dur, cpu.Trace()[0].Dur)
	}
}

func TestWorkersReduceSimulatedTime(t *testing.T) {
	g := graph.New()
	a := g.Const("a", tensor.Ones(256, 256))
	b := g.Const("b", tensor.Ones(256, 256))
	mm := ops.MatMul(a, b)

	measure := func(workers int) time.Duration {
		s := NewSession(g, WithWorkers(workers), WithTrace())
		// Average over a few runs for stability.
		var total time.Duration
		const reps = 3
		for i := 0; i < reps; i++ {
			s.MustRun([]*graph.Node{mm}, nil)
		}
		for _, e := range s.Trace() {
			total += e.Dur
		}
		return total / reps
	}
	t1 := measure(1)
	t8 := measure(8)
	if t8 >= t1 {
		t.Fatalf("8 modeled workers (%v) should be faster than 1 (%v)", t8, t1)
	}
}

func TestSessionStepVisibleToContext(t *testing.T) {
	g := graph.New()
	c := g.Const("c", tensor.Ones(1))
	id := ops.Identity(c)
	s := NewSession(g)
	s.MustRun([]*graph.Node{id}, nil)
	s.MustRun([]*graph.Node{id}, nil)
	if s.Context().Step != 1 { // step of the most recent run
		t.Fatalf("ctx step = %d, want 1", s.Context().Step)
	}
}

func TestPlanCacheReuse(t *testing.T) {
	g, x, y, _ := buildAffine(t)
	s := NewSession(g)
	feeds := Feeds{x: tensor.Ones(2, 3)}
	s.MustRun([]*graph.Node{y}, feeds)
	if len(s.planCache) != 1 {
		t.Fatalf("plan cache should hold 1 plan, has %d", len(s.planCache))
	}
	s.MustRun([]*graph.Node{y}, feeds)
	if len(s.planCache) != 1 {
		t.Fatal("repeated fetch set must reuse the cached plan")
	}
}
