// Package runtime executes dataflow graphs: the analogue of the
// TensorFlow runtime the paper instruments. It provides sessions,
// per-operation tracing on a simulated timeline, and two devices —
// a CPU whose op timings come from measured kernels under the virtual
// thread pool, and a modeled GPU using a roofline cost model (the
// substitution for the paper's GTX 960; see DESIGN.md §4.2).
//
// # Compiled execution plans
//
// The first Run of a fetch set compiles it into a Plan: the transitive
// dependencies in topological order, plus a static buffer assignment.
// Compilation performs liveness analysis over the schedule — tracking
// which operation last reads each intermediate, and which values may
// alias which buffers through view-producing operations — and assigns
// every operation that implements graph.IntoOp a destination slot in a
// size-bucketed buffer arena (tensor.Arena). Two intermediates with
// disjoint lifetimes share one buffer, and because plans are cached on
// the session, steady-state steps execute with near-zero heap
// allocation: operations write into their preassigned slots through
// the ForwardInto fast path (see IntoRunner).
//
// Tensors returned from Run never alias arena memory: any fetch whose
// value may reach an arena slot is deep-copied on the way out
// (copy-on-fetch), so callers can hold results across subsequent Runs.
// Operations that cannot run into a preassigned buffer (views such as
// Reshape, stateful random ops) keep the allocating Forward path, and
// the liveness analysis conservatively treats their outputs as aliases
// of every input.
//
// # Parallelism and the shared worker pool
//
// Plans also record the dependency structure of a parallel scheduler:
// with WithInterOpWorkers(n) a Run drains the plan's LPT-ordered
// ready queue with the session goroutine plus up to n-1 helpers
// leased from the process-wide bounded worker pool (internal/sched)
// while staying bit-identical to sequential execution — see sched.go
// for the scheduler and the determinism contract (serial Impure lane,
// variable hazard edges, gated arena reuse). WithIntraOpWorkers(n)
// additionally makes every kernel pool execute its chunks on shared-
// pool goroutines (tensor.Pool's real parallel strategy) instead of
// modeling the speedup. Sessions lease their helper claim at creation
// and release it in Close; no goroutines are spawned per Run.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// ErrClosed is returned by Run after Session.Close.
var ErrClosed = errors.New("runtime: session closed")

// Event records one operation execution on the session's simulated
// timeline. Durations are device-modeled (see Device).
type Event struct {
	Node  *graph.Node
	Op    string        // operation type name
	Class graph.OpClass // Figure-3 class
	Start time.Duration // simulated start since session creation
	Dur   time.Duration // simulated duration
	Step  int           // session run counter when executed
	// Worker is the inter-op lane that executed the operation (always
	// 0 under serial execution; see WithInterOpWorkers).
	Worker int
	// Wall is the measured host wall time of the operation, next to
	// the device-modeled Dur.
	Wall time.Duration
	// WallStart is the absolute host time the operation started —
	// with Wall and Worker it reconstructs the measured execution
	// timeline (one lane per inter-op worker) next to the simulated
	// one, and lets serving traces nest op spans under request spans.
	WallStart time.Time
	// CP is the operation's critical-path finish within its run: Dur
	// plus the longest Dur-weighted chain of semantic scheduling
	// constraints (data, variable hazard and serial-lane edges)
	// feeding it. The run's maximum CP is its critical path — the
	// lower bound on makespan under unlimited inter-op workers and
	// unconstrained buffers for any schedule the determinism contract
	// permits, which profiling turns into the achievable inter-op
	// speedup of the workload (independent of the traced width).
	CP time.Duration
}

// Device turns an operation invocation into an output tensor and a
// modeled duration.
type Device interface {
	Name() string
	Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error)
}

// IntoRunner is implemented by devices that support the
// allocation-free fast path: executing a graph.IntoOp into a
// plan-assigned destination buffer. Both built-in devices implement
// it; plans fall back to the allocating Device.Run path when the
// session's device does not.
type IntoRunner interface {
	RunInto(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor, out *tensor.Tensor) (time.Duration, error)
}

// CPUDevice executes kernels through the virtual thread pool and
// reports the pool's simulated parallel time (measured chunk makespan;
// see tensor.Pool).
type CPUDevice struct{}

// Name implements Device.
func (CPUDevice) Name() string { return "cpu" }

// Run implements Device.
func (CPUDevice) Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	ctx.Pool.ResetOp()
	t0 := time.Now()
	out, err := n.Op().Forward(ctx, in)
	wall := time.Since(t0)
	return out, ctx.Pool.OpTime(wall), err
}

// RunInto implements IntoRunner.
func (CPUDevice) RunInto(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor, out *tensor.Tensor) (time.Duration, error) {
	ctx.Pool.ResetOp()
	t0 := time.Now()
	err := n.Op().(graph.IntoOp).ForwardInto(ctx, in, out)
	wall := time.Since(t0)
	return ctx.Pool.OpTime(wall), err
}

// GPUDevice executes kernels on the CPU for numerical correctness but
// reports a modeled duration launch + max(flops/PeakFlops,
// bytes/PeakBytes): a roofline model calibrated to a GTX-960-class
// part. Operations expose flop/byte counts through graph.Coster; other
// ops get a byte-dominated default.
type GPUDevice struct {
	// PeakFlops is the peak arithmetic throughput in FLOP/s.
	PeakFlops float64
	// PeakBytes is the peak memory bandwidth in bytes/s.
	PeakBytes float64
	// Launch is the fixed kernel-launch overhead per operation.
	Launch time.Duration
	// Efficiency derates the peaks (real kernels do not hit roofline).
	Efficiency float64
}

// NewGTX960 returns a GPU device modeled on the paper's NVidia GeForce
// GTX 960: ~2.3 TFLOP/s fp32, ~112 GB/s, ~5µs launch overhead, with a
// 35% roofline efficiency typical of 2016-era cuDNN kernels.
func NewGTX960() *GPUDevice {
	return &GPUDevice{
		PeakFlops:  2.3e12,
		PeakBytes:  112e9,
		Launch:     5 * time.Microsecond,
		Efficiency: 0.35,
	}
}

// Name implements Device.
func (d *GPUDevice) Name() string { return "gpu" }

// modelTime computes the roofline duration for executing n.
func (d *GPUDevice) modelTime(n *graph.Node) time.Duration {
	inShapes := make([][]int, len(n.Inputs()))
	for i, x := range n.Inputs() {
		inShapes[i] = x.Shape()
	}
	var flops, bytes int64
	if c, ok := n.Op().(graph.Coster); ok {
		flops, bytes = c.Cost(inShapes, n.Shape())
	} else {
		var b int64
		for _, s := range inShapes {
			b += int64(tensor.SizeOf(s))
		}
		b += int64(tensor.SizeOf(n.Shape()))
		bytes = b * 4
		flops = int64(tensor.SizeOf(n.Shape()))
	}
	eff := d.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	ft := float64(flops) / (d.PeakFlops * eff)
	bt := float64(bytes) / (d.PeakBytes * eff)
	t := ft
	if bt > t {
		t = bt
	}
	return d.Launch + time.Duration(t*float64(time.Second))
}

// Run implements Device.
func (d *GPUDevice) Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	out, err := n.Op().Forward(ctx, in)
	if err != nil {
		return nil, 0, err
	}
	return out, d.modelTime(n), nil
}

// RunInto implements IntoRunner.
func (d *GPUDevice) RunInto(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor, out *tensor.Tensor) (time.Duration, error) {
	if err := n.Op().(graph.IntoOp).ForwardInto(ctx, in, out); err != nil {
		return 0, err
	}
	return d.modelTime(n), nil
}

// Feeds maps placeholder nodes to their input tensors for one Run.
type Feeds map[*graph.Node]*tensor.Tensor

// planStep is one scheduled node of a compiled plan.
type planStep struct {
	node *graph.Node
	kind graph.NodeKind
	ins  []int            // value positions of the node's inputs
	in   []*tensor.Tensor // reusable input gather buffer
	out  *tensor.Tensor   // arena-backed destination (fast path only)
	into graph.IntoOp     // non-nil iff out is set
	// readBufs are the arena buffers this step's inputs may reference
	// (through views included) — the read set the tensor.BufferGuard
	// assertion hook brackets in test builds.
	readBufs [][]float32
}

// Plan is a compiled execution schedule for one fetch set: the
// topological order of the transitive dependencies plus the static
// arena-buffer assignment produced by liveness analysis. Plans are
// cached per session and reused by every Run with the same fetches.
//
// Beyond the sequential schedule, compilation records the inter-op
// dependency structure (per-step successor lists and in-degrees) the
// parallel scheduler drains: data edges, variable-access hazard edges,
// the serial lane chaining Impure operations in schedule order, and
// arena anti-dependency edges gating buffer reuse on the completion of
// every reader of the buffer's previous value (see sched.go).
type Plan struct {
	steps     []planStep
	values    []*tensor.Tensor // per-step results, reused across Runs
	fetchPos  []int            // value position of each fetch
	fetchCopy []bool           // fetch may alias arena memory → clone
	slots     int              // arena slots assigned
	buffers   int              // distinct arena buffers backing them

	// Inter-op scheduling structure over op steps (non-op steps carry
	// no work and are resolved before the parallel phase).
	succs [][]int32 // scheduling successors of each step
	preds [][]int32 // scheduling predecessors (mirror of succs)
	// predsCP excludes arena anti-dependency edges: the semantic
	// constraints (data, variable hazard, serial Impure lane) that any
	// buffer assignment must respect. Critical paths are computed over
	// these, so the reported achievable speedup is width-independent;
	// the makespan simulation uses the full preds, which do include
	// the anti-dependency resource constraints of this plan.
	predsCP [][]int32
	indeg   []int32 // scheduling in-degree of each step
	nOps    int     // number of op steps
	edges   int     // scheduling edges (incl. hazard/serial/anti)

	// prio orders the parallel scheduler's ready queue by longest
	// processing time to a sink: a step's priority is the weight of the
	// heaviest chain of scheduling successors hanging off it, so the
	// drain starts critical-path work first and trailing stragglers
	// shrink. Compiled with unit weights (chain length in ops);
	// refreshed with measured durations after each parallel run.
	// Priority affects only the pop order among simultaneously ready
	// steps — the determinism contract makes results independent of it.
	prio []int64

	// Per-run scratch, reused across Runs (sessions are confined to
	// one goroutine between Runs).
	indegRun []int32
	finish   []time.Duration // simulated finish time per step
	cp       []time.Duration // critical-path finish per step
	durs     []time.Duration // measured device time per step (parallel)
	walls    []time.Duration // measured wall time per step (parallel)
	wallT0   []time.Time     // measured wall start per step (parallel)
}

// Slots reports how many operation outputs were assigned arena slots.
func (p *Plan) Slots() int { return p.slots }

// Buffers reports how many distinct arena buffers back those slots;
// slots minus buffers is the number of in-plan buffer reuses.
func (p *Plan) Buffers() int { return p.buffers }

// Ops reports how many schedulable operation steps the plan holds.
func (p *Plan) Ops() int { return p.nOps }

// Edges reports how many scheduling edges constrain the plan: data
// dependencies plus the hazard, serial-lane and arena anti-dependency
// edges that make parallel execution bit-identical to sequential.
func (p *Plan) Edges() int { return p.edges }

// Session executes fetches against a graph on a device, accumulating
// an operation trace on a simulated timeline.
//
// A Session is confined to a single goroutine: the plan cache, buffer
// arena, execution context (pool, RNG, training flag) and trace are
// all unsynchronized, and compiled plans write into arena buffers the
// session owns. Concurrent callers must use one session per goroutine
// — serve.Engine's session pool is the sanctioned concurrent entry
// point. Multiple sessions may share one graph for inference (forward
// execution only reads variable values); training mutates variable and
// optimizer state and must be exclusive with any other use of the
// graph.
//
// Sessions with parallelism enabled hold a lease on the shared worker
// pool; call Close when done with such a session (serve.Engine does on
// shutdown). Close is cheap and safe on any session.
type Session struct {
	g     *graph.Graph
	dev   Device
	ctx   *graph.ExecContext
	clock time.Duration
	step  int

	traceOn bool
	trace   []Event

	arena     *tensor.Arena
	planCache map[string]*Plan

	// interOp is the inter-op scheduler width: 1 executes the plan's
	// sequential schedule on the session goroutine (the default);
	// larger values drain the plan's ready queue with the session
	// goroutine plus helpers leased from the shared worker pool (see
	// sched.go). Results are bit-identical either way. The session
	// remains single-goroutine from the caller's perspective: Run
	// still may not be invoked concurrently.
	interOp int
	// intraOp is the real intra-op width: with n > 1 the session's
	// kernel pools execute chunks on shared-pool helpers
	// (tensor.NewParallelPool) instead of modeling the speedup.
	intraOp   int
	execPool  *sched.Pool          // shared worker pool (default sched.Default)
	lease     *sched.Lease         // the session's adaptive claim on it
	leaseName string               // tenant name the claim registers under
	closed    bool                 // set by Close; Run then fails
	wctx      []*graph.ExecContext // per-helper contexts, built lazily
}

// Option configures a Session.
type Option func(*Session)

// WithDevice selects the execution device (default CPUDevice).
func WithDevice(d Device) Option { return func(s *Session) { s.dev = d } }

// WithWorkers sets the modeled intra-op worker count (default 1).
func WithWorkers(n int) Option { return func(s *Session) { s.ctx.Pool.SetWorkers(n) } }

// WithSeed seeds the session RNG (default 1).
func WithSeed(seed int64) Option {
	return func(s *Session) { s.ctx.RNG = rand.New(rand.NewSource(seed)) }
}

// Reseed replaces the session's RNG with a fresh stream seeded by
// seed, exactly as if the session had been created with WithSeed(seed)
// and never drawn from it. Data-parallel training (internal/dist) uses
// it to key every micro-batch's stochastic operations (sampling,
// dropout masks) to the chunk being executed rather than to the
// session's history, so a chunk's RNG stream is identical no matter
// how many chunks the session ran before it — the property that keeps
// replicated training bit-identical across replica counts. Like Run,
// it must only be called between Runs from the session's goroutine.
func (s *Session) Reseed(seed int64) {
	s.ctx.RNG = rand.New(rand.NewSource(seed))
}

// WithInterOpWorkers sets the inter-op scheduler width (default 1 =
// sequential execution). With n > 1, Run executes independent plan
// steps on up to n goroutines — the session goroutine plus helpers
// leased from the shared worker pool — while preserving the
// determinism contract: fetches, losses and variable updates are
// bit-identical to serial execution for any n, and WithSeed replay is
// unchanged — stateful and RNG-consuming operations stay on a serial
// lane in schedule order.
func WithInterOpWorkers(n int) Option {
	return func(s *Session) {
		if n < 1 {
			n = 1
		}
		s.interOp = n
	}
}

// WithIntraOpWorkers sets the real intra-op width (default 1): with
// n > 1 every kernel pool of the session executes its chunked loops on
// up to n goroutines drawn from the shared worker pool, and traced op
// durations are measured wall time rather than modeled makespans.
// Chunk boundaries and float32 reduction order are fixed by trip count
// and grain — never by width — so results stay bit-identical to a
// serial session (and to any other intra-op × inter-op width). Takes
// precedence over WithWorkers, which keeps the paper's serial modeled
// pools.
func WithIntraOpWorkers(n int) Option {
	return func(s *Session) {
		if n < 1 {
			n = 1
		}
		s.intraOp = n
	}
}

// WithWorkerPool selects the shared execution pool helpers are leased
// from (default sched.Default()). Tests use scoped pools; production
// sessions share the process-wide one so total execution goroutines
// stay bounded by its size regardless of session count.
func WithWorkerPool(p *sched.Pool) Option {
	return func(s *Session) { s.execPool = p }
}

// WithTrace enables event collection.
func WithTrace() Option { return func(s *Session) { s.traceOn = true } }

// WithLeaseName sets the tenant name the session's shared-pool lease
// registers under (default "session"). Multi-session subsystems pass
// their own names ("engine/<model>", "dist/<model>", "fuse/<model>")
// so the pool's per-tenant occupancy report attributes helper demand
// to the right tenant class.
func WithLeaseName(name string) Option {
	return func(s *Session) { s.leaseName = name }
}

// NewSession creates a session over g.
func NewSession(g *graph.Graph, opts ...Option) *Session {
	s := &Session{
		g:   g,
		dev: CPUDevice{},
		ctx: &graph.ExecContext{
			Pool: tensor.NewPool(1),
			RNG:  rand.New(rand.NewSource(1)),
		},
		arena:     tensor.NewArena(),
		planCache: map[string]*Plan{},
		interOp:   1,
	}
	for _, o := range opts {
		o(s)
	}
	// Lease the session's bounded claim on the shared worker pool: up
	// to interOp-1 inter-op drain helpers plus intraOp-1 kernel helpers
	// per concurrently executing op. The lease persists across Runs
	// (workers return to the pool between regions) and is released by
	// Close.
	if s.intraOp > 1 || s.interOp > 1 {
		if s.execPool == nil {
			s.execPool = sched.Default()
		}
		intra := s.intraOp
		if intra < 1 {
			intra = 1
		}
		name := s.leaseName
		if name == "" {
			name = "session"
		}
		s.lease = s.execPool.LeaseNamed(name, s.interOp*intra-1)
	}
	if s.intraOp > 1 {
		s.ctx.Pool = tensor.NewParallelPool(s.intraOp, s.lease)
	}
	return s
}

// Close releases the session's lease on the shared worker pool and
// marks the session closed: subsequent Runs fail with ErrClosed.
// Close is idempotent and must only be called between Runs (sessions
// are single-goroutine). Sessions that never enabled parallelism hold
// no pool resources, and Close on them only bars further Runs.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.lease != nil {
		s.lease.Close()
	}
	s.wctx = nil
}

// IntraOpWorkers returns the configured real intra-op width.
func (s *Session) IntraOpWorkers() int {
	if s.intraOp < 1 {
		return 1
	}
	return s.intraOp
}

// Context exposes the session's execution context.
func (s *Session) Context() *graph.ExecContext { return s.ctx }

// Device returns the session's device.
func (s *Session) Device() Device { return s.dev }

// Arena exposes the session's buffer arena (stats, tests).
func (s *Session) Arena() *tensor.Arena { return s.arena }

// InterOpWorkers returns the configured inter-op scheduler width.
func (s *Session) InterOpWorkers() int { return s.interOp }

// SetTraining sets the mode flag seen by mode-dependent ops.
func (s *Session) SetTraining(v bool) { s.ctx.Training = v }

// Step returns the number of completed Run calls.
func (s *Session) Step() int { return s.step }

// Trace returns the accumulated events (nil unless WithTrace).
func (s *Session) Trace() []Event { return s.trace }

// ResetTrace clears accumulated events and rewinds the sim clock.
func (s *Session) ResetTrace() {
	s.trace = nil
	s.clock = 0
}

// SimTime returns the simulated timeline position.
func (s *Session) SimTime() time.Duration { return s.clock }

func planKey(fetches []*graph.Node) string {
	b := make([]byte, 0, len(fetches)*4)
	for _, f := range fetches {
		id := f.ID()
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Plan returns the compiled plan for a fetch set, compiling and
// caching it if needed.
func (s *Session) Plan(fetches []*graph.Node) *Plan {
	key := planKey(fetches)
	plan, ok := s.planCache[key]
	if !ok {
		plan = s.compile(fetches)
		s.planCache[key] = plan
	}
	return plan
}

// compile builds the execution plan: topological order, alias-aware
// liveness analysis, and greedy arena-slot assignment.
func (s *Session) compile(fetches []*graph.Node) *Plan {
	order := graph.Topo(fetches)
	n := len(order)
	pos := make(map[*graph.Node]int, n)
	for i, nd := range order {
		pos[nd] = i
	}

	// lastUse[i]: the latest schedule position that reads node i's
	// value (its own position if nothing does).
	lastUse := make([]int, n)
	for i := range order {
		lastUse[i] = i
	}
	for i, nd := range order {
		for _, in := range nd.Inputs() {
			lastUse[pos[in]] = i
		}
	}

	_, devOK := s.dev.(IntoRunner)

	// aliases[i]: the arena slots node i's value may reference. An op
	// with a ForwardInto fast path owns exactly its own slot (its
	// output is always freshly written arena memory). Any other op is
	// conservatively assumed to return a view of its inputs (Reshape,
	// Identity, inference-mode Dropout do), so it propagates the union
	// of their alias sets.
	steps := make([]planStep, n)
	aliases := make([][]int, n)
	for i, nd := range order {
		st := planStep{node: nd, kind: nd.Kind()}
		if nd.Kind() == graph.KindOp {
			ins := nd.Inputs()
			st.ins = make([]int, len(ins))
			st.in = make([]*tensor.Tensor, len(ins))
			for j, in := range ins {
				st.ins[j] = pos[in]
			}
			if io, ok := nd.Op().(graph.IntoOp); ok && devOK && tensor.SizeOf(nd.Shape()) > 0 {
				st.into = io
				aliases[i] = []int{i}
			} else {
				var set []int
				for _, j := range st.ins {
					for _, sl := range aliases[j] {
						if !slices.Contains(set, sl) {
							set = append(set, sl)
						}
					}
				}
				aliases[i] = set
			}
		}
		steps[i] = st
	}

	// slotEnd[sl]: the schedule position after which slot sl's buffer
	// is dead. A slot reachable from a fetch is pinned for the whole
	// run (position n) and its fetch is cloned on the way out.
	slotEnd := make(map[int]int)
	for i := range order {
		for _, sl := range aliases[i] {
			if lastUse[i] > slotEnd[sl] {
				slotEnd[sl] = lastUse[i]
			}
		}
	}
	fetchPos := make([]int, len(fetches))
	fetchCopy := make([]bool, len(fetches))
	for j, f := range fetches {
		i := pos[f]
		fetchPos[j] = i
		fetchCopy[j] = len(aliases[i]) > 0
		for _, sl := range aliases[i] {
			slotEnd[sl] = n
		}
	}

	// ---- inter-op scheduling structure ----
	//
	// Edges between op steps constrain the parallel scheduler so that
	// any worker count reproduces sequential execution bit-exactly.
	// All edges point forward in schedule order, so the structure is
	// acyclic by construction. Non-op steps (feeds, constants,
	// variables) carry no work; they resolve before the parallel phase
	// and need no edges.
	plan := &Plan{steps: steps, values: make([]*tensor.Tensor, n), fetchPos: fetchPos, fetchCopy: fetchCopy}
	succs := make([][]int32, n)
	preds := make([][]int32, n)
	predsCP := make([][]int32, n)
	indeg := make([]int32, n)
	seenEdge := map[int64]bool{}
	addEdgeKind := func(from, to int, anti bool) {
		if from < 0 || from == to {
			return
		}
		if steps[from].kind != graph.KindOp || steps[to].kind != graph.KindOp {
			return
		}
		k := int64(from)<<32 | int64(to)
		if seenEdge[k] {
			return
		}
		seenEdge[k] = true
		succs[from] = append(succs[from], int32(to))
		preds[to] = append(preds[to], int32(from))
		if !anti {
			predsCP[to] = append(predsCP[to], int32(from))
		}
		indeg[to]++
		plan.edges++
	}
	addEdge := func(from, to int) { addEdgeKind(from, to, false) }

	// varAliases[i]: the variable nodes whose storage node i's value
	// may reference. A Variable node references itself; an op without
	// the IntoOp fast path may return a view of its inputs (Reshape,
	// Identity, inference-mode Dropout), so it propagates the union of
	// their sets — mirroring the arena alias analysis — while into-ops
	// write fresh arena memory and reference no variable.
	varAliases := make([][]*graph.Node, n)
	for i := range order {
		switch steps[i].kind {
		case graph.KindVariable:
			varAliases[i] = []*graph.Node{order[i]}
		case graph.KindOp:
			if steps[i].into == nil {
				var set []*graph.Node
				for _, p := range steps[i].ins {
					for _, v := range varAliases[p] {
						if !slices.Contains(set, v) {
							set = append(set, v)
						}
					}
				}
				varAliases[i] = set
			}
		}
	}

	// Data edges, variable-access hazard edges, and the serial Impure
	// lane, in one schedule walk. Hazard edges serialize every access
	// to a mutated node (graph.Mutator — optimizer apply-ops) in
	// schedule order: reads since the last write precede the next
	// write, and writes precede subsequent reads, so kernels that read
	// a variable — directly or through a view — never race its
	// in-place update. The Impure chain pins stateful/RNG ops (random
	// sampling, dropout's mask handoff, optimizer slot state) to a
	// serial lane keyed by graph order, which is what keeps WithSeed
	// replay identical across inter-op worker counts.
	type varAccess struct {
		lastWrite  int
		readsSince []int
	}
	access := map[*graph.Node]*varAccess{}
	touch := func(nd *graph.Node) *varAccess {
		a := access[nd]
		if a == nil {
			a = &varAccess{lastWrite: -1}
			access[nd] = a
		}
		return a
	}
	prevImpure := -1
	for i, nd := range order {
		if steps[i].kind != graph.KindOp {
			continue
		}
		plan.nOps++
		for _, p := range steps[i].ins {
			addEdge(p, i)
		}
		var reads []*graph.Node
		for _, p := range steps[i].ins {
			for _, v := range varAliases[p] {
				if !slices.Contains(reads, v) {
					reads = append(reads, v)
				}
			}
		}
		for _, v := range reads {
			a := touch(v)
			addEdge(a.lastWrite, i)
			a.readsSince = append(a.readsSince, i)
		}
		if mut, ok := nd.Op().(graph.Mutator); ok {
			for _, v := range mut.Mutates() {
				a := touch(v)
				for _, r := range a.readsSince {
					addEdge(r, i)
				}
				addEdge(a.lastWrite, i)
				a.lastWrite = i
				a.readsSince = a.readsSince[:0]
			}
		}
		if _, ok := nd.Op().(graph.Impure); ok {
			addEdge(prevImpure, i)
			prevImpure = i
		}
	}

	// readersOfSlot[sl]: every op step whose inputs may reference slot
	// sl's value (via views included) — the completion set that gates
	// recycling sl's buffer under parallel execution.
	readersOfSlot := map[int][]int{}
	for i := range order {
		if steps[i].kind != graph.KindOp {
			continue
		}
		for _, p := range steps[i].ins {
			for _, sl := range aliases[p] {
				readersOfSlot[sl] = append(readersOfSlot[sl], i)
			}
		}
	}

	// Greedy buffer assignment: walk the schedule, free each slot's
	// buffer as soon as the scan passes its last use, so later slots
	// with disjoint lifetimes reuse it. A node's destination is drawn
	// while all of its inputs' buffers are still checked out, so out
	// never aliases an input.
	//
	// Completion-count gating: when step i reuses the buffer slot sl
	// released, sequential execution is safe because i runs after sl's
	// last reader by position; under parallel execution that ordering
	// must be explicit. Two strategies, by session width:
	//
	//   - interOp == 1 (and plans too large for ancestor bitsets):
	//     maximal reuse, with anti-dependency edges from sl and every
	//     reader of sl to the acquiring step. Transitively (each
	//     acquirer waits for the previous holder's readers and is
	//     itself ordered before the next acquirer) a buffer's whole
	//     access history stays sequential.
	//   - interOp > 1: parallelism-aware reuse — a freed buffer is
	//     taken only when the releasing slot and all of its readers
	//     are already ancestors of the acquiring step through the
	//     scheduling edges built above, so reuse never serializes
	//     independent branches; otherwise the step draws a fresh
	//     buffer (more memory, no lost concurrency).
	const ancestorCap = 8192
	useAnc := s.interOp > 1 && n <= ancestorCap
	var anc []uint64
	words := (n + 63) / 64
	if useAnc {
		anc = make([]uint64, n*words)
		for i := range order {
			if steps[i].kind != graph.KindOp {
				continue
			}
			row := anc[i*words : (i+1)*words]
			for _, p32 := range preds[i] {
				p := int(p32)
				row[p/64] |= 1 << uint(p%64)
				prow := anc[p*words : (p+1)*words]
				for w := range row {
					row[w] |= prow[w]
				}
			}
		}
	}
	isAnc := func(a, of int) bool {
		return anc[of*words+a/64]&(1<<uint(a%64)) != 0
	}
	// orderedBefore reports whether every access to slot sl is already
	// ordered before step i by existing scheduling edges.
	orderedBefore := func(sl, i int) bool {
		if !isAnc(sl, i) {
			return false
		}
		for _, r := range readersOfSlot[sl] {
			if r != i && !isAnc(r, i) {
				return false
			}
		}
		return true
	}

	releaseAt := make([][]int, n)
	for sl, e := range slotEnd {
		if e < n {
			releaseAt[e] = append(releaseAt[e], sl)
		}
	}
	type freeBuf struct {
		data []float32 // full size-class capacity
		slot int       // slot that released it
	}
	freelist := map[int][]freeBuf{} // size class → freed buffers (LIFO)
	bufs := make(map[int]*tensor.Tensor, len(slotEnd))
	seen := make(map[*float32]bool)
	for i := range order {
		if steps[i].into != nil {
			size := tensor.SizeOf(order[i].Shape())
			bkt := tensor.BucketFor(size)
			var data []float32
			free := freelist[bkt]
			if useAnc {
				for idx := len(free) - 1; idx >= 0; idx-- {
					if orderedBefore(free[idx].slot, i) {
						data = free[idx].data
						freelist[bkt] = append(free[:idx], free[idx+1:]...)
						break
					}
				}
			} else if len(free) > 0 {
				fb := free[len(free)-1]
				freelist[bkt] = free[:len(free)-1]
				data = fb.data
				addEdgeKind(fb.slot, i, true)
				for _, r := range readersOfSlot[fb.slot] {
					addEdgeKind(r, i, true)
				}
			}
			if data == nil {
				data = s.arena.Get(size)
			}
			t := tensor.FromSlice(data[:size], order[i].Shape()...)
			bufs[i] = t
			steps[i].out = t
			plan.slots++
			if d := t.Data(); !seen[&d[0]] {
				seen[&d[0]] = true
				plan.buffers++
			}
		}
		for _, sl := range releaseAt[i] {
			d := bufs[sl].Data()
			freelist[cap(d)] = append(freelist[cap(d)], freeBuf{data: d[:cap(d)], slot: sl})
		}
	}
	// Freed buffers not re-acquired go back to the session arena for
	// other plans (runs of different plans never overlap).
	for _, free := range freelist {
		for _, fb := range free {
			s.arena.Put(fb.data)
		}
	}

	// Guard read sets: the distinct arena buffers each op step's
	// inputs may reference (consulted only when a tensor.BufferGuard
	// is installed, i.e. in test builds).
	for i := range order {
		if steps[i].kind != graph.KindOp {
			continue
		}
		var bufsSeen []*float32
		for _, p := range steps[i].ins {
			for _, sl := range aliases[p] {
				d := bufs[sl].Data()
				if !slices.Contains(bufsSeen, &d[0]) {
					bufsSeen = append(bufsSeen, &d[0])
					steps[i].readBufs = append(steps[i].readBufs, d)
				}
			}
		}
	}

	plan.succs = succs
	plan.preds = preds
	plan.predsCP = predsCP
	plan.indeg = indeg
	// Initial LPT priority: unit-weight height to the schedule's sinks.
	// Edges point forward in schedule order, so one reverse walk
	// suffices; measured durations refine it after the first run.
	plan.prio = make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		if steps[i].kind != graph.KindOp {
			continue
		}
		var h int64
		for _, sc := range succs[i] {
			if p := plan.prio[sc]; p > h {
				h = p
			}
		}
		plan.prio[i] = h + 1
	}
	plan.indegRun = make([]int32, n)
	plan.finish = make([]time.Duration, n)
	plan.cp = make([]time.Duration, n)
	plan.durs = make([]time.Duration, n)
	plan.walls = make([]time.Duration, n)
	plan.wallT0 = make([]time.Time, n)
	return plan
}

// Run evaluates fetches given feeds, returning one tensor per fetch.
// The returned tensors never alias plan buffers: they remain valid
// across subsequent Runs.
//
// With WithInterOpWorkers(n > 1) the plan's ready queue is drained by
// n worker goroutines (see sched.go); the results are bit-identical
// to sequential execution for any n.
func (s *Session) Run(fetches []*graph.Node, feeds Feeds) ([]*tensor.Tensor, error) {
	if s.closed {
		return nil, ErrClosed
	}
	plan := s.Plan(fetches)
	s.ctx.Step = s.step
	var err error
	if s.interOp > 1 && plan.nOps > 1 {
		err = s.runParallel(plan, feeds)
	} else {
		err = s.runSequential(plan, feeds)
	}
	if err != nil {
		return nil, err
	}
	s.step++
	values := plan.values
	out := make([]*tensor.Tensor, len(fetches))
	for j := range fetches {
		v := values[plan.fetchPos[j]]
		if plan.fetchCopy[j] {
			v = v.Clone()
		}
		out[j] = v
	}
	return out, nil
}

// RunTraced evaluates fetches like Run but additionally returns the
// per-op Events of exactly this run, regardless of whether persistent
// tracing is enabled. Serving uses it to attach op spans to sampled
// requests without leaving tracing on for the unsampled ones: when the
// session was not already tracing, the events are handed to the caller
// and the session's persistent trace buffer is left untouched.
func (s *Session) RunTraced(fetches []*graph.Node, feeds Feeds) ([]*tensor.Tensor, []Event, error) {
	prevOn, mark := s.traceOn, len(s.trace)
	s.traceOn = true
	out, err := s.Run(fetches, feeds)
	events := append([]Event(nil), s.trace[mark:]...)
	if !prevOn {
		s.trace = s.trace[:mark]
	}
	s.traceOn = prevOn
	return out, events, err
}

// resolveNonOps materializes the workless steps — constants,
// variables and validated feeds — into the plan's value table. Both
// execution drivers share it, so feed validation (and its errors)
// behaves identically regardless of inter-op width.
func resolveNonOps(plan *Plan, feeds Feeds) error {
	values := plan.values
	for i := range plan.steps {
		st := &plan.steps[i]
		switch st.kind {
		case graph.KindConst, graph.KindVariable:
			values[i] = st.node.Value()
		case graph.KindPlaceholder:
			v, ok := feeds[st.node]
			if !ok {
				return fmt.Errorf("runtime: missing feed for placeholder %q", st.node.Name())
			}
			if !tensor.SameShape(v.Shape(), st.node.Shape()) {
				return fmt.Errorf("runtime: feed for %q has shape %v, want %v", st.node.Name(), v.Shape(), st.node.Shape())
			}
			values[i] = v
		}
	}
	return nil
}

// runSequential executes the plan's schedule in order on the session
// goroutine — the default, and the semantics parallel execution must
// reproduce bit-exactly.
func (s *Session) runSequential(plan *Plan, feeds Feeds) error {
	if err := resolveNonOps(plan, feeds); err != nil {
		return err
	}
	values := plan.values
	guard := s.arena.Guard()
	var cp []time.Duration
	if s.traceOn {
		cp = plan.cp
		for i := range cp {
			cp[i] = 0
		}
	}
	for i := range plan.steps {
		st := &plan.steps[i]
		if st.kind != graph.KindOp {
			continue
		}
		nd := st.node
		in := st.in
		for j, p := range st.ins {
			in[j] = values[p]
		}
		var t0 time.Time
		if s.traceOn {
			t0 = time.Now()
		}
		out, dur, err := s.execStep(s.ctx, st, in, guard)
		if err != nil {
			return fmt.Errorf("runtime: %v: %w", nd, err)
		}
		if s.traceOn {
			// Critical path over the semantic constraints (data,
			// hazard, serial lane): the width-independent bound any
			// legal schedule and buffer assignment must respect.
			c := time.Duration(0)
			for _, p := range plan.predsCP[i] {
				if cp[p] > c {
					c = cp[p]
				}
			}
			cp[i] = c + dur
			s.trace = append(s.trace, Event{
				Node: nd, Op: nd.OpName(), Class: nd.Op().Class(),
				Start: s.clock, Dur: dur, Step: s.step,
				Worker: 0, Wall: time.Since(t0), WallStart: t0, CP: cp[i],
			})
		}
		s.clock += dur
		values[i] = out
	}
	return nil
}

// execStep runs one op step on a device through the given execution
// context, bracketing arena-buffer access with the test-build guard.
func (s *Session) execStep(ctx *graph.ExecContext, st *planStep, in []*tensor.Tensor, guard *tensor.BufferGuard) (*tensor.Tensor, time.Duration, error) {
	if guard != nil {
		for _, b := range st.readBufs {
			guard.BeginRead(b)
		}
		if st.out != nil {
			guard.BeginWrite(st.out.Data())
		}
		defer func() {
			if st.out != nil {
				guard.EndWrite(st.out.Data())
			}
			for _, b := range st.readBufs {
				guard.EndRead(b)
			}
		}()
	}
	if st.into != nil {
		dur, err := s.dev.(IntoRunner).RunInto(ctx, st.node, in, st.out)
		return st.out, dur, err
	}
	return s.dev.Run(ctx, st.node, in)
}

// MustRun is Run for tests and examples; it panics on error.
func (s *Session) MustRun(fetches []*graph.Node, feeds Feeds) []*tensor.Tensor {
	out, err := s.Run(fetches, feeds)
	if err != nil {
		panic(err)
	}
	return out
}
