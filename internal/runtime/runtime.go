// Package runtime executes dataflow graphs: the analogue of the
// TensorFlow runtime the paper instruments. It provides sessions,
// per-operation tracing on a simulated timeline, and two devices —
// a CPU whose op timings come from measured kernels under the virtual
// thread pool, and a modeled GPU using a roofline cost model (the
// substitution for the paper's GTX 960; see DESIGN.md §4.2).
//
// # Compiled execution plans
//
// The first Run of a fetch set compiles it into a Plan: the transitive
// dependencies in topological order, plus a static buffer assignment.
// Compilation performs liveness analysis over the schedule — tracking
// which operation last reads each intermediate, and which values may
// alias which buffers through view-producing operations — and assigns
// every operation that implements graph.IntoOp a destination slot in a
// size-bucketed buffer arena (tensor.Arena). Two intermediates with
// disjoint lifetimes share one buffer, and because plans are cached on
// the session, steady-state steps execute with near-zero heap
// allocation: operations write into their preassigned slots through
// the ForwardInto fast path (see IntoRunner).
//
// Tensors returned from Run never alias arena memory: any fetch whose
// value may reach an arena slot is deep-copied on the way out
// (copy-on-fetch), so callers can hold results across subsequent Runs.
// Operations that cannot run into a preassigned buffer (views such as
// Reshape, stateful random ops) keep the allocating Forward path, and
// the liveness analysis conservatively treats their outputs as aliases
// of every input.
package runtime

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Event records one operation execution on the session's simulated
// timeline. Durations are device-modeled (see Device).
type Event struct {
	Node  *graph.Node
	Op    string        // operation type name
	Class graph.OpClass // Figure-3 class
	Start time.Duration // simulated start since session creation
	Dur   time.Duration // simulated duration
	Step  int           // session run counter when executed
}

// Device turns an operation invocation into an output tensor and a
// modeled duration.
type Device interface {
	Name() string
	Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error)
}

// IntoRunner is implemented by devices that support the
// allocation-free fast path: executing a graph.IntoOp into a
// plan-assigned destination buffer. Both built-in devices implement
// it; plans fall back to the allocating Device.Run path when the
// session's device does not.
type IntoRunner interface {
	RunInto(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor, out *tensor.Tensor) (time.Duration, error)
}

// CPUDevice executes kernels through the virtual thread pool and
// reports the pool's simulated parallel time (measured chunk makespan;
// see tensor.Pool).
type CPUDevice struct{}

// Name implements Device.
func (CPUDevice) Name() string { return "cpu" }

// Run implements Device.
func (CPUDevice) Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	ctx.Pool.ResetOp()
	t0 := time.Now()
	out, err := n.Op().Forward(ctx, in)
	wall := time.Since(t0)
	return out, ctx.Pool.OpTime(wall), err
}

// RunInto implements IntoRunner.
func (CPUDevice) RunInto(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor, out *tensor.Tensor) (time.Duration, error) {
	ctx.Pool.ResetOp()
	t0 := time.Now()
	err := n.Op().(graph.IntoOp).ForwardInto(ctx, in, out)
	wall := time.Since(t0)
	return ctx.Pool.OpTime(wall), err
}

// GPUDevice executes kernels on the CPU for numerical correctness but
// reports a modeled duration launch + max(flops/PeakFlops,
// bytes/PeakBytes): a roofline model calibrated to a GTX-960-class
// part. Operations expose flop/byte counts through graph.Coster; other
// ops get a byte-dominated default.
type GPUDevice struct {
	// PeakFlops is the peak arithmetic throughput in FLOP/s.
	PeakFlops float64
	// PeakBytes is the peak memory bandwidth in bytes/s.
	PeakBytes float64
	// Launch is the fixed kernel-launch overhead per operation.
	Launch time.Duration
	// Efficiency derates the peaks (real kernels do not hit roofline).
	Efficiency float64
}

// NewGTX960 returns a GPU device modeled on the paper's NVidia GeForce
// GTX 960: ~2.3 TFLOP/s fp32, ~112 GB/s, ~5µs launch overhead, with a
// 35% roofline efficiency typical of 2016-era cuDNN kernels.
func NewGTX960() *GPUDevice {
	return &GPUDevice{
		PeakFlops:  2.3e12,
		PeakBytes:  112e9,
		Launch:     5 * time.Microsecond,
		Efficiency: 0.35,
	}
}

// Name implements Device.
func (d *GPUDevice) Name() string { return "gpu" }

// modelTime computes the roofline duration for executing n.
func (d *GPUDevice) modelTime(n *graph.Node) time.Duration {
	inShapes := make([][]int, len(n.Inputs()))
	for i, x := range n.Inputs() {
		inShapes[i] = x.Shape()
	}
	var flops, bytes int64
	if c, ok := n.Op().(graph.Coster); ok {
		flops, bytes = c.Cost(inShapes, n.Shape())
	} else {
		var b int64
		for _, s := range inShapes {
			b += int64(tensor.SizeOf(s))
		}
		b += int64(tensor.SizeOf(n.Shape()))
		bytes = b * 4
		flops = int64(tensor.SizeOf(n.Shape()))
	}
	eff := d.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	ft := float64(flops) / (d.PeakFlops * eff)
	bt := float64(bytes) / (d.PeakBytes * eff)
	t := ft
	if bt > t {
		t = bt
	}
	return d.Launch + time.Duration(t*float64(time.Second))
}

// Run implements Device.
func (d *GPUDevice) Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	out, err := n.Op().Forward(ctx, in)
	if err != nil {
		return nil, 0, err
	}
	return out, d.modelTime(n), nil
}

// RunInto implements IntoRunner.
func (d *GPUDevice) RunInto(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor, out *tensor.Tensor) (time.Duration, error) {
	if err := n.Op().(graph.IntoOp).ForwardInto(ctx, in, out); err != nil {
		return 0, err
	}
	return d.modelTime(n), nil
}

// Feeds maps placeholder nodes to their input tensors for one Run.
type Feeds map[*graph.Node]*tensor.Tensor

// planStep is one scheduled node of a compiled plan.
type planStep struct {
	node *graph.Node
	kind graph.NodeKind
	ins  []int            // value positions of the node's inputs
	in   []*tensor.Tensor // reusable input gather buffer
	out  *tensor.Tensor   // arena-backed destination (fast path only)
	into graph.IntoOp     // non-nil iff out is set
}

// Plan is a compiled execution schedule for one fetch set: the
// topological order of the transitive dependencies plus the static
// arena-buffer assignment produced by liveness analysis. Plans are
// cached per session and reused by every Run with the same fetches.
type Plan struct {
	steps     []planStep
	values    []*tensor.Tensor // per-step results, reused across Runs
	fetchPos  []int            // value position of each fetch
	fetchCopy []bool           // fetch may alias arena memory → clone
	slots     int              // arena slots assigned
	buffers   int              // distinct arena buffers backing them
}

// Slots reports how many operation outputs were assigned arena slots.
func (p *Plan) Slots() int { return p.slots }

// Buffers reports how many distinct arena buffers back those slots;
// slots minus buffers is the number of in-plan buffer reuses.
func (p *Plan) Buffers() int { return p.buffers }

// Session executes fetches against a graph on a device, accumulating
// an operation trace on a simulated timeline.
//
// A Session is confined to a single goroutine: the plan cache, buffer
// arena, execution context (pool, RNG, training flag) and trace are
// all unsynchronized, and compiled plans write into arena buffers the
// session owns. Concurrent callers must use one session per goroutine
// — serve.Engine's session pool is the sanctioned concurrent entry
// point. Multiple sessions may share one graph for inference (forward
// execution only reads variable values); training mutates variable and
// optimizer state and must be exclusive with any other use of the
// graph.
type Session struct {
	g     *graph.Graph
	dev   Device
	ctx   *graph.ExecContext
	clock time.Duration
	step  int

	traceOn bool
	trace   []Event

	arena     *tensor.Arena
	planCache map[string]*Plan
}

// Option configures a Session.
type Option func(*Session)

// WithDevice selects the execution device (default CPUDevice).
func WithDevice(d Device) Option { return func(s *Session) { s.dev = d } }

// WithWorkers sets the modeled intra-op worker count (default 1).
func WithWorkers(n int) Option { return func(s *Session) { s.ctx.Pool.SetWorkers(n) } }

// WithSeed seeds the session RNG (default 1).
func WithSeed(seed int64) Option {
	return func(s *Session) { s.ctx.RNG = rand.New(rand.NewSource(seed)) }
}

// WithTrace enables event collection.
func WithTrace() Option { return func(s *Session) { s.traceOn = true } }

// NewSession creates a session over g.
func NewSession(g *graph.Graph, opts ...Option) *Session {
	s := &Session{
		g:   g,
		dev: CPUDevice{},
		ctx: &graph.ExecContext{
			Pool: tensor.NewPool(1),
			RNG:  rand.New(rand.NewSource(1)),
		},
		arena:     tensor.NewArena(),
		planCache: map[string]*Plan{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Context exposes the session's execution context.
func (s *Session) Context() *graph.ExecContext { return s.ctx }

// Device returns the session's device.
func (s *Session) Device() Device { return s.dev }

// Arena exposes the session's buffer arena (stats, tests).
func (s *Session) Arena() *tensor.Arena { return s.arena }

// SetTraining sets the mode flag seen by mode-dependent ops.
func (s *Session) SetTraining(v bool) { s.ctx.Training = v }

// Step returns the number of completed Run calls.
func (s *Session) Step() int { return s.step }

// Trace returns the accumulated events (nil unless WithTrace).
func (s *Session) Trace() []Event { return s.trace }

// ResetTrace clears accumulated events and rewinds the sim clock.
func (s *Session) ResetTrace() {
	s.trace = nil
	s.clock = 0
}

// SimTime returns the simulated timeline position.
func (s *Session) SimTime() time.Duration { return s.clock }

func planKey(fetches []*graph.Node) string {
	b := make([]byte, 0, len(fetches)*4)
	for _, f := range fetches {
		id := f.ID()
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Plan returns the compiled plan for a fetch set, compiling and
// caching it if needed.
func (s *Session) Plan(fetches []*graph.Node) *Plan {
	key := planKey(fetches)
	plan, ok := s.planCache[key]
	if !ok {
		plan = s.compile(fetches)
		s.planCache[key] = plan
	}
	return plan
}

// compile builds the execution plan: topological order, alias-aware
// liveness analysis, and greedy arena-slot assignment.
func (s *Session) compile(fetches []*graph.Node) *Plan {
	order := graph.Topo(fetches)
	n := len(order)
	pos := make(map[*graph.Node]int, n)
	for i, nd := range order {
		pos[nd] = i
	}

	// lastUse[i]: the latest schedule position that reads node i's
	// value (its own position if nothing does).
	lastUse := make([]int, n)
	for i := range order {
		lastUse[i] = i
	}
	for i, nd := range order {
		for _, in := range nd.Inputs() {
			lastUse[pos[in]] = i
		}
	}

	_, devOK := s.dev.(IntoRunner)

	// aliases[i]: the arena slots node i's value may reference. An op
	// with a ForwardInto fast path owns exactly its own slot (its
	// output is always freshly written arena memory). Any other op is
	// conservatively assumed to return a view of its inputs (Reshape,
	// Identity, inference-mode Dropout do), so it propagates the union
	// of their alias sets.
	steps := make([]planStep, n)
	aliases := make([][]int, n)
	for i, nd := range order {
		st := planStep{node: nd, kind: nd.Kind()}
		if nd.Kind() == graph.KindOp {
			ins := nd.Inputs()
			st.ins = make([]int, len(ins))
			st.in = make([]*tensor.Tensor, len(ins))
			for j, in := range ins {
				st.ins[j] = pos[in]
			}
			if io, ok := nd.Op().(graph.IntoOp); ok && devOK && tensor.SizeOf(nd.Shape()) > 0 {
				st.into = io
				aliases[i] = []int{i}
			} else {
				var set []int
				for _, j := range st.ins {
					for _, sl := range aliases[j] {
						if !containsInt(set, sl) {
							set = append(set, sl)
						}
					}
				}
				aliases[i] = set
			}
		}
		steps[i] = st
	}

	// slotEnd[sl]: the schedule position after which slot sl's buffer
	// is dead. A slot reachable from a fetch is pinned for the whole
	// run (position n) and its fetch is cloned on the way out.
	slotEnd := make(map[int]int)
	for i := range order {
		for _, sl := range aliases[i] {
			if lastUse[i] > slotEnd[sl] {
				slotEnd[sl] = lastUse[i]
			}
		}
	}
	fetchPos := make([]int, len(fetches))
	fetchCopy := make([]bool, len(fetches))
	for j, f := range fetches {
		i := pos[f]
		fetchPos[j] = i
		fetchCopy[j] = len(aliases[i]) > 0
		for _, sl := range aliases[i] {
			slotEnd[sl] = n
		}
	}

	// Greedy buffer assignment: walk the schedule, draw each slot's
	// buffer from the arena, and return it as soon as the scan passes
	// its last use, so later slots with disjoint lifetimes reuse it.
	// A node's destination is drawn while all of its inputs' buffers
	// are still checked out, so out never aliases an input.
	releaseAt := make([][]int, n)
	for sl, e := range slotEnd {
		if e < n {
			releaseAt[e] = append(releaseAt[e], sl)
		}
	}
	bufs := make(map[int]*tensor.Tensor, len(slotEnd))
	seen := make(map[*float32]bool)
	plan := &Plan{steps: steps, values: make([]*tensor.Tensor, n), fetchPos: fetchPos, fetchCopy: fetchCopy}
	for i := range order {
		if steps[i].into != nil {
			buf := s.arena.Get(tensor.SizeOf(order[i].Shape()))
			t := tensor.FromSlice(buf, order[i].Shape()...)
			bufs[i] = t
			steps[i].out = t
			plan.slots++
			if d := t.Data(); !seen[&d[0]] {
				seen[&d[0]] = true
				plan.buffers++
			}
		}
		for _, sl := range releaseAt[i] {
			s.arena.Put(bufs[sl].Data())
		}
	}
	return plan
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Run evaluates fetches given feeds, returning one tensor per fetch.
// The returned tensors never alias plan buffers: they remain valid
// across subsequent Runs.
func (s *Session) Run(fetches []*graph.Node, feeds Feeds) ([]*tensor.Tensor, error) {
	plan := s.Plan(fetches)
	s.ctx.Step = s.step
	values := plan.values
	for i := range plan.steps {
		st := &plan.steps[i]
		nd := st.node
		switch st.kind {
		case graph.KindConst, graph.KindVariable:
			values[i] = nd.Value()
		case graph.KindPlaceholder:
			v, ok := feeds[nd]
			if !ok {
				return nil, fmt.Errorf("runtime: missing feed for placeholder %q", nd.Name())
			}
			if !tensor.SameShape(v.Shape(), nd.Shape()) {
				return nil, fmt.Errorf("runtime: feed for %q has shape %v, want %v", nd.Name(), v.Shape(), nd.Shape())
			}
			values[i] = v
		case graph.KindOp:
			in := st.in
			for j, p := range st.ins {
				in[j] = values[p]
			}
			var out *tensor.Tensor
			var dur time.Duration
			var err error
			if st.into != nil {
				dur, err = s.dev.(IntoRunner).RunInto(s.ctx, nd, in, st.out)
				out = st.out
			} else {
				out, dur, err = s.dev.Run(s.ctx, nd, in)
			}
			if err != nil {
				return nil, fmt.Errorf("runtime: %v: %w", nd, err)
			}
			if s.traceOn {
				s.trace = append(s.trace, Event{
					Node: nd, Op: nd.OpName(), Class: nd.Op().Class(),
					Start: s.clock, Dur: dur, Step: s.step,
				})
			}
			s.clock += dur
			values[i] = out
		}
	}
	s.step++
	out := make([]*tensor.Tensor, len(fetches))
	for j := range fetches {
		v := values[plan.fetchPos[j]]
		if plan.fetchCopy[j] {
			v = v.Clone()
		}
		out[j] = v
	}
	return out, nil
}

// MustRun is Run for tests and examples; it panics on error.
func (s *Session) MustRun(fetches []*graph.Node, feeds Feeds) []*tensor.Tensor {
	out, err := s.Run(fetches, feeds)
	if err != nil {
		panic(err)
	}
	return out
}
