// Package runtime executes dataflow graphs: the analogue of the
// TensorFlow runtime the paper instruments. It provides sessions,
// per-operation tracing on a simulated timeline, and two devices —
// a CPU whose op timings come from measured kernels under the virtual
// thread pool, and a modeled GPU using a roofline cost model (the
// substitution for the paper's GTX 960; see DESIGN.md §4.2).
package runtime

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Event records one operation execution on the session's simulated
// timeline. Durations are device-modeled (see Device).
type Event struct {
	Node  *graph.Node
	Op    string        // operation type name
	Class graph.OpClass // Figure-3 class
	Start time.Duration // simulated start since session creation
	Dur   time.Duration // simulated duration
	Step  int           // session run counter when executed
}

// Device turns an operation invocation into an output tensor and a
// modeled duration.
type Device interface {
	Name() string
	Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error)
}

// CPUDevice executes kernels through the virtual thread pool and
// reports the pool's simulated parallel time (measured chunk makespan;
// see tensor.Pool).
type CPUDevice struct{}

// Name implements Device.
func (CPUDevice) Name() string { return "cpu" }

// Run implements Device.
func (CPUDevice) Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	ctx.Pool.ResetOp()
	t0 := time.Now()
	out, err := n.Op().Forward(ctx, in)
	wall := time.Since(t0)
	return out, ctx.Pool.OpTime(wall), err
}

// GPUDevice executes kernels on the CPU for numerical correctness but
// reports a modeled duration launch + max(flops/PeakFlops,
// bytes/PeakBytes): a roofline model calibrated to a GTX-960-class
// part. Operations expose flop/byte counts through graph.Coster; other
// ops get a byte-dominated default.
type GPUDevice struct {
	// PeakFlops is the peak arithmetic throughput in FLOP/s.
	PeakFlops float64
	// PeakBytes is the peak memory bandwidth in bytes/s.
	PeakBytes float64
	// Launch is the fixed kernel-launch overhead per operation.
	Launch time.Duration
	// Efficiency derates the peaks (real kernels do not hit roofline).
	Efficiency float64
}

// NewGTX960 returns a GPU device modeled on the paper's NVidia GeForce
// GTX 960: ~2.3 TFLOP/s fp32, ~112 GB/s, ~5µs launch overhead, with a
// 35% roofline efficiency typical of 2016-era cuDNN kernels.
func NewGTX960() *GPUDevice {
	return &GPUDevice{
		PeakFlops:  2.3e12,
		PeakBytes:  112e9,
		Launch:     5 * time.Microsecond,
		Efficiency: 0.35,
	}
}

// Name implements Device.
func (d *GPUDevice) Name() string { return "gpu" }

// Run implements Device.
func (d *GPUDevice) Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	out, err := n.Op().Forward(ctx, in)
	if err != nil {
		return nil, 0, err
	}
	inShapes := make([][]int, len(n.Inputs()))
	for i, x := range n.Inputs() {
		inShapes[i] = x.Shape()
	}
	var flops, bytes int64
	if c, ok := n.Op().(graph.Coster); ok {
		flops, bytes = c.Cost(inShapes, n.Shape())
	} else {
		var b int64
		for _, s := range inShapes {
			b += int64(tensor.SizeOf(s))
		}
		b += int64(tensor.SizeOf(n.Shape()))
		bytes = b * 4
		flops = int64(tensor.SizeOf(n.Shape()))
	}
	eff := d.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	ft := float64(flops) / (d.PeakFlops * eff)
	bt := float64(bytes) / (d.PeakBytes * eff)
	t := ft
	if bt > t {
		t = bt
	}
	return out, d.Launch + time.Duration(t*float64(time.Second)), nil
}

// Feeds maps placeholder nodes to their input tensors for one Run.
type Feeds map[*graph.Node]*tensor.Tensor

// Session executes fetches against a graph on a device, accumulating
// an operation trace on a simulated timeline.
type Session struct {
	g     *graph.Graph
	dev   Device
	ctx   *graph.ExecContext
	clock time.Duration
	step  int

	traceOn bool
	trace   []Event

	planCache map[string][]*graph.Node
}

// Option configures a Session.
type Option func(*Session)

// WithDevice selects the execution device (default CPUDevice).
func WithDevice(d Device) Option { return func(s *Session) { s.dev = d } }

// WithWorkers sets the modeled intra-op worker count (default 1).
func WithWorkers(n int) Option { return func(s *Session) { s.ctx.Pool.SetWorkers(n) } }

// WithSeed seeds the session RNG (default 1).
func WithSeed(seed int64) Option {
	return func(s *Session) { s.ctx.RNG = rand.New(rand.NewSource(seed)) }
}

// WithTrace enables event collection.
func WithTrace() Option { return func(s *Session) { s.traceOn = true } }

// NewSession creates a session over g.
func NewSession(g *graph.Graph, opts ...Option) *Session {
	s := &Session{
		g:   g,
		dev: CPUDevice{},
		ctx: &graph.ExecContext{
			Pool: tensor.NewPool(1),
			RNG:  rand.New(rand.NewSource(1)),
		},
		planCache: map[string][]*graph.Node{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Context exposes the session's execution context.
func (s *Session) Context() *graph.ExecContext { return s.ctx }

// Device returns the session's device.
func (s *Session) Device() Device { return s.dev }

// SetTraining sets the mode flag seen by mode-dependent ops.
func (s *Session) SetTraining(v bool) { s.ctx.Training = v }

// Step returns the number of completed Run calls.
func (s *Session) Step() int { return s.step }

// Trace returns the accumulated events (nil unless WithTrace).
func (s *Session) Trace() []Event { return s.trace }

// ResetTrace clears accumulated events and rewinds the sim clock.
func (s *Session) ResetTrace() {
	s.trace = nil
	s.clock = 0
}

// SimTime returns the simulated timeline position.
func (s *Session) SimTime() time.Duration { return s.clock }

func planKey(fetches []*graph.Node) string {
	b := make([]byte, 0, len(fetches)*4)
	for _, f := range fetches {
		id := f.ID()
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Run evaluates fetches given feeds, returning one tensor per fetch.
func (s *Session) Run(fetches []*graph.Node, feeds Feeds) ([]*tensor.Tensor, error) {
	key := planKey(fetches)
	plan, ok := s.planCache[key]
	if !ok {
		plan = graph.Topo(fetches)
		s.planCache[key] = plan
	}
	s.ctx.Step = s.step
	values := make(map[*graph.Node]*tensor.Tensor, len(plan))
	for _, n := range plan {
		switch n.Kind() {
		case graph.KindConst, graph.KindVariable:
			values[n] = n.Value()
		case graph.KindPlaceholder:
			v, ok := feeds[n]
			if !ok {
				return nil, fmt.Errorf("runtime: missing feed for placeholder %q", n.Name())
			}
			if !tensor.SameShape(v.Shape(), n.Shape()) {
				return nil, fmt.Errorf("runtime: feed for %q has shape %v, want %v", n.Name(), v.Shape(), n.Shape())
			}
			values[n] = v
		case graph.KindOp:
			ins := make([]*tensor.Tensor, len(n.Inputs()))
			for i, in := range n.Inputs() {
				ins[i] = values[in]
			}
			out, dur, err := s.dev.Run(s.ctx, n, ins)
			if err != nil {
				return nil, fmt.Errorf("runtime: %v: %w", n, err)
			}
			if s.traceOn {
				s.trace = append(s.trace, Event{
					Node: n, Op: n.OpName(), Class: n.Op().Class(),
					Start: s.clock, Dur: dur, Step: s.step,
				})
			}
			s.clock += dur
			values[n] = out
		}
	}
	s.step++
	out := make([]*tensor.Tensor, len(fetches))
	for i, f := range fetches {
		out[i] = values[f]
	}
	return out, nil
}

// MustRun is Run for tests and examples; it panics on error.
func (s *Session) MustRun(fetches []*graph.Node, feeds Feeds) []*tensor.Tensor {
	out, err := s.Run(fetches, feeds)
	if err != nil {
		panic(err)
	}
	return out
}
