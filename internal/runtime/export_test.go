package runtime

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func TestWriteChromeTrace(t *testing.T) {
	g, x, y, _ := buildAffine(t)
	s := NewSession(g, WithTrace())
	s.MustRun([]*graph.Node{y}, Feeds{x: tensor.Ones(2, 3)})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s.Trace()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			if e["name"] == "" || e["dur"] == nil {
				t.Fatalf("incomplete event: %v", e)
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Fatalf("expected 2 op events, got %d", complete)
	}
	if meta == 0 {
		t.Fatal("expected thread-name metadata records")
	}
}

func TestWriteChromeTraceWall(t *testing.T) {
	g, x, y, _ := buildAffine(t)
	s := NewSession(g, WithTrace(), WithInterOpWorkers(2))
	s.MustRun([]*graph.Node{y}, Feeds{x: tensor.Ones(2, 3)})

	var buf bytes.Buffer
	if err := WriteChromeTraceWall(&buf, s.Trace()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("wall trace is not valid JSON: %v", err)
	}
	workers := map[float64]bool{}
	var complete int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
			if ts := e["ts"].(float64); ts < 0 {
				t.Fatalf("negative wall-relative timestamp: %v", e)
			}
			workers[e["tid"].(float64)] = true
		case "M":
			if !strings.HasPrefix(e["args"].(map[string]interface{})["name"].(string), "worker ") {
				t.Fatalf("wall lanes must be named after workers: %v", e)
			}
		}
	}
	if complete != 2 {
		t.Fatalf("expected 2 op events on the wall timeline, got %d", complete)
	}
	// Both ops carry a wall start even when one lane served them; the
	// lane ids must be inter-op worker indices, not the simulated lanes.
	for tid := range workers {
		if tid < 0 || tid >= 2 {
			t.Fatalf("wall lane %v outside inter-op worker range", tid)
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty trace should serialize to []: %q", buf.String())
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	build := func(seed float32) *graph.Graph {
		g := graph.New()
		w := g.Variable("w", tensor.Full(seed, 3, 2))
		b := g.Variable("b", tensor.Full(seed*2, 2))
		x := g.Placeholder("x", 1, 3)
		ops.Add(ops.MatMul(x, w), b)
		return g
	}
	src := build(7)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := build(0)
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst, false); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst.Variables() {
		want := float32(7)
		if v.Name() == "b" {
			want = 14
		}
		for _, x := range v.Value().Data() {
			if x != want {
				t.Fatalf("variable %s restored to %v, want %v", v.Name(), x, want)
			}
		}
	}
}

func TestCheckpointRejectsCorruptMagic(t *testing.T) {
	g := graph.New()
	g.Variable("w", tensor.Ones(1))
	if err := LoadCheckpoint(strings.NewReader("NOPE....."), g, false); err == nil {
		t.Fatal("bad magic should be rejected")
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	src := graph.New()
	src.Variable("w", tensor.Ones(2, 2))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := graph.New()
	dst.Variable("w", tensor.Ones(3))
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst, false); err == nil {
		t.Fatal("shape mismatch should be rejected")
	}
}

func TestCheckpointUnknownVariable(t *testing.T) {
	src := graph.New()
	src.Variable("only_in_src", tensor.Ones(1))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := graph.New()
	dst.Variable("different", tensor.Ones(1))
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst, false); err == nil {
		t.Fatal("unknown checkpoint variable should be rejected")
	}
}

func TestCheckpointMissingVariableStrictness(t *testing.T) {
	src := graph.New()
	src.Variable("w", tensor.Full(3, 2))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := graph.New()
	dst.Variable("w", tensor.New(2))
	dst.Variable("extra", tensor.New(1))
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst, false); err == nil {
		t.Fatal("strict load should reject unrestored graph variables")
	}
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dst, true); err != nil {
		t.Fatalf("lenient load should succeed: %v", err)
	}
	if dst.Variables()[0].Value().Data()[0] != 3 {
		t.Fatal("lenient load should still restore present variables")
	}
}

func TestCheckpointDuplicateNamesRejected(t *testing.T) {
	g := graph.New()
	g.Variable("dup", tensor.Ones(1))
	g.Variable("dup", tensor.Ones(1))
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, g); err == nil {
		t.Fatal("duplicate variable names should be rejected")
	}
}

func TestCheckpointWorkloadWeights(t *testing.T) {
	// Round-trip a real (tiny) workload's weights: train a little,
	// save, reinitialize, load, verify equality.
	g := graph.New()
	w := g.Variable("fc/W", tensor.RandNormal(newTestRNG(), 0, 1, 4, 4))
	loss := ops.Sum(ops.Square(w))
	grads, err := graph.Gradients(loss, []*graph.Node{w})
	if err != nil {
		t.Fatal(err)
	}
	up := ops.ApplySGD(w, grads[0], 0.1)
	s := NewSession(g)
	s.MustRun([]*graph.Node{up}, nil)
	trained := w.Value().Clone()

	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, g); err != nil {
		t.Fatal(err)
	}
	w.Value().Zero()
	if err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), g, false); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(trained, w.Value()) != 0 {
		t.Fatal("restored weights differ from trained weights")
	}
}

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }
