package runtime

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// buildChain is a small feed-forward stack whose intermediates are all
// IntoOp-capable, so the plan assigns arena slots throughout.
func buildChain() (*graph.Graph, *graph.Node, *graph.Node, *graph.Node) {
	g := graph.New()
	x := g.Placeholder("x", 4, 8)
	w1 := g.Variable("w1", tensor.Full(0.1, 8, 8))
	w2 := g.Variable("w2", tensor.Full(0.2, 8, 8))
	h1 := ops.Relu(ops.MatMul(x, w1))
	h2 := ops.Relu(ops.MatMul(h1, w2))
	y := ops.Add(h2, h1)
	return g, x, h1, y
}

// TestRunResultsSurviveSubsequentRuns is the arena-aliasing guarantee:
// a tensor fetched from one Run must not be clobbered when a later Run
// reuses the plan's buffers.
func TestRunResultsSurviveSubsequentRuns(t *testing.T) {
	g, x, h1, y := buildChain()
	_ = g
	s := NewSession(g)
	first := s.MustRun([]*graph.Node{y, h1}, Feeds{x: tensor.Ones(4, 8)})
	snapY := first[0].Clone()
	snapH := first[1].Clone()
	// Different feed → different intermediate values through the same
	// plan buffers.
	s.MustRun([]*graph.Node{y, h1}, Feeds{x: tensor.Full(-3, 4, 8)})
	if tensor.MaxAbsDiff(first[0], snapY) != 0 {
		t.Fatal("fetched output was clobbered by a subsequent Run")
	}
	if tensor.MaxAbsDiff(first[1], snapH) != 0 {
		t.Fatal("fetched intermediate was clobbered by a subsequent Run")
	}
}

// TestFetchThroughViewIsCopied guards the conservative alias analysis:
// a fetch reached through a view op (Reshape of an arena-backed
// MatMul) must still be protected by copy-on-fetch.
func TestFetchThroughViewIsCopied(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", 2, 6)
	w := g.Variable("w", tensor.Full(0.5, 6, 6))
	mm := ops.MatMul(x, w)
	view := ops.Reshape(mm, 3, 4)
	s := NewSession(g)
	first := s.MustRun([]*graph.Node{view}, Feeds{x: tensor.Ones(2, 6)})
	snap := first[0].Clone()
	s.MustRun([]*graph.Node{view}, Feeds{x: tensor.Full(7, 2, 6)})
	if tensor.MaxAbsDiff(first[0], snap) != 0 {
		t.Fatal("fetch through a view op aliased a reused arena buffer")
	}
}

// TestPlanCachedMatchesFreshCompile: executing through a cached plan
// must produce bitwise-identical results to a freshly compiled one.
func TestPlanCachedMatchesFreshCompile(t *testing.T) {
	feeds := func(s *Session, x *graph.Node) Feeds {
		return Feeds{x: tensor.Full(0.3, 4, 8)}
	}
	g1, x1, _, y1 := buildChain()
	_ = g1
	s1 := NewSession(g1)
	s1.MustRun([]*graph.Node{y1}, feeds(s1, x1)) // compile + warm buffers
	cached := s1.MustRun([]*graph.Node{y1}, feeds(s1, x1))

	g2, x2, _, y2 := buildChain()
	_ = g2
	s2 := NewSession(g2)
	fresh := s2.MustRun([]*graph.Node{y2}, feeds(s2, x2))

	if tensor.MaxAbsDiff(cached[0], fresh[0]) != 0 {
		t.Fatalf("cached plan diverges from fresh compile (max diff %g)",
			tensor.MaxAbsDiff(cached[0], fresh[0]))
	}
}

// TestPlanAssignsAndReusesArenaSlots checks the liveness analysis
// actually shares buffers: a deep chain of same-shaped intermediates
// needs far fewer buffers than slots.
func TestPlanAssignsAndReusesArenaSlots(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", 16, 16)
	h := x
	for i := 0; i < 10; i++ {
		h = ops.Relu(h)
	}
	s := NewSession(g)
	p := s.Plan([]*graph.Node{h})
	if p.Slots() != 10 {
		t.Fatalf("expected 10 arena slots, got %d", p.Slots())
	}
	// Each step's input is still live while its output is written, so
	// two buffers alternate; the fetched slot is pinned.
	if p.Buffers() > 3 {
		t.Fatalf("liveness analysis should reuse buffers: %d slots, %d buffers", p.Slots(), p.Buffers())
	}
}

// TestPlanOutputNeverAliasesInput: with ping-ponging shared buffers, an
// op must never be assigned the buffer one of its live inputs holds.
// Relu(MatMul) chains would corrupt instantly if that happened; verify
// against an interpreter-style fresh session numerically.
func TestPlanOutputNeverAliasesInput(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", 8, 8)
	w := g.Variable("w", tensor.Full(0.11, 8, 8))
	h := x
	for i := 0; i < 6; i++ {
		h = ops.Relu(ops.MatMul(h, w))
	}
	s := NewSession(g)
	feed := Feeds{x: tensor.Ones(8, 8)}
	s.MustRun([]*graph.Node{h}, feed)
	got := s.MustRun([]*graph.Node{h}, feed)[0]

	// Reference: naive per-step evaluation with fresh tensors.
	p := tensor.NewPool(1)
	ref := tensor.Ones(8, 8)
	wv := tensor.Full(0.11, 8, 8)
	for i := 0; i < 6; i++ {
		mm, err := tensor.MatMul(p, ref, wv, false, false)
		if err != nil {
			t.Fatal(err)
		}
		ref = tensor.UnaryOp(p, mm, func(v float32) float32 {
			if v > 0 {
				return v
			}
			return 0
		})
	}
	if tensor.MaxAbsDiff(got, ref) != 0 {
		t.Fatalf("plan execution diverges from reference (max diff %g)", tensor.MaxAbsDiff(got, ref))
	}
}

// TestSteadyStateRunAllocsLittle: after the first Run compiles the
// plan, subsequent Runs should perform only a handful of allocations
// (the fetch clone and bookkeeping), not one per intermediate.
func TestSteadyStateRunAllocsLittle(t *testing.T) {
	g, x, _, y := buildChain()
	_ = g
	s := NewSession(g)
	feed := Feeds{x: tensor.Ones(4, 8)}
	s.MustRun([]*graph.Node{y}, feed)
	allocs := testing.AllocsPerRun(20, func() {
		s.MustRun([]*graph.Node{y}, feed)
	})
	if allocs > 12 {
		t.Fatalf("steady-state Run allocates %v objects; the plan should hold them near zero", allocs)
	}
}

// TestTrainingStepMatchesSeedSemantics: optimizer updates through the
// planned executor accumulate across Runs exactly as before.
func TestTrainingStepMatchesSeedSemantics(t *testing.T) {
	g := graph.New()
	x := g.Placeholder("x", 2, 3)
	w := g.Variable("w", tensor.Full(0.5, 3, 1))
	y := ops.Sum(ops.MatMul(x, w))
	grads, err := graph.Gradients(y, []*graph.Node{w})
	if err != nil {
		t.Fatal(err)
	}
	up := ops.ApplySGD(w, grads[0], 0.1)
	s := NewSession(g)
	feed := Feeds{x: tensor.Ones(2, 3)}
	s.MustRun([]*graph.Node{up}, feed)
	s.MustRun([]*graph.Node{up}, feed)
	// dL/dw = 2 per element; two steps of -0.1·2 from 0.5, replayed in
	// float32 to match the kernel's arithmetic exactly.
	want := float32(0.5)
	want -= float32(0.1) * 2
	want -= float32(0.1) * 2
	for _, v := range w.Value().Data() {
		if v != want {
			t.Fatalf("variable after two planned steps = %v, want %v", w.Value().Data(), want)
		}
	}
}

// TestGPUDevicePlansIntoPath: the modeled GPU also supports the
// ForwardInto fast path and must stay numerically identical to CPU.
func TestGPUDevicePlansIntoPath(t *testing.T) {
	g, x, _, y := buildChain()
	_ = g
	feed := Feeds{x: tensor.Ones(4, 8)}
	cpu := NewSession(g)
	gpu := NewSession(g, WithDevice(NewGTX960()))
	if gpu.Plan([]*graph.Node{y}).Slots() == 0 {
		t.Fatal("GPU device should use arena slots")
	}
	a := cpu.MustRun([]*graph.Node{y}, feed)[0]
	b := gpu.MustRun([]*graph.Node{y}, feed)[0]
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("GPU into-path diverges from CPU")
	}
}

// legacyDevice exercises the fallback: a device that does not
// implement IntoRunner must still execute correctly, with the plan
// assigning no arena slots.
type legacyDevice struct{}

func (legacyDevice) Name() string { return "legacy" }

func (legacyDevice) Run(ctx *graph.ExecContext, n *graph.Node, in []*tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	out, err := n.Op().Forward(ctx, in)
	return out, 0, err
}

func TestLegacyDeviceFallsBackToForward(t *testing.T) {
	g, x, _, y := buildChain()
	_ = g
	feed := Feeds{x: tensor.Ones(4, 8)}
	s := NewSession(g, WithDevice(legacyDevice{}))
	if got := s.Plan([]*graph.Node{y}).Slots(); got != 0 {
		t.Fatalf("legacy device must not get arena slots, got %d", got)
	}
	ref := NewSession(g)
	a := s.MustRun([]*graph.Node{y}, feed)[0]
	b := ref.MustRun([]*graph.Node{y}, feed)[0]
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("legacy fallback diverges from planned execution")
	}
}
