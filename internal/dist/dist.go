// Package dist is the suite's data-parallel training subsystem: N
// model replicas of one workload, each with its own graph and session,
// trained in lockstep over shards of a synthetic dataset with a
// deterministic gradient all-reduce.
//
// # Architecture
//
// A global training step consumes a fixed global batch, decomposed
// into a canonical grid of micro-batches ("chunks", see
// dataset.Partition). Each replica owns a contiguous ascending range
// of the chunk grid. A step has three phases:
//
//  1. Gradients: every replica runs, for each owned chunk, one
//     forward+backward of its workload's training graph — fetching the
//     loss and the raw parameter gradients through nn.TrainPlan,
//     without touching any variable. The chunk's data comes from
//     core.TrainSampler keyed by dataset.ChunkSeed(seed, step, chunk),
//     and the session RNG is reseeded with the same chunk seed, so a
//     chunk's batch AND its stochastic ops (dropout masks, VAE
//     sampling) are pure functions of the chunk coordinates.
//  2. All-reduce: for every parameter, the per-chunk gradients combine
//     in fixed ascending-replica, ascending-chunk float32 order —
//     replica ranges are contiguous and ascending, so this is exactly
//     ascending order over the global chunk grid — then scale by
//     1/chunks (the gradient of the global-batch mean loss). The work
//     distributes as element ranges (large parameters split across
//     several, see reduceRangeElems) reducing independently, possibly
//     on different shared-pool workers; every element's combine order
//     is fixed regardless of the split or placement.
//  3. Apply: every replica feeds the same combined tensors into its
//     TrainPlan's fed-gradient placeholders and fetches the same
//     apply node, taking one identical optimizer step. Replica
//     variable state therefore stays bitwise identical forever.
//
// # Determinism contract
//
// For a fixed global batch, chunk count and seed, the training
// trajectory — per-step losses and every variable's final bits — is
// identical for ANY replica count dividing the chunk count, and for
// any intra-op/inter-op session widths: the replica count changes only
// which session executes a chunk, never the chunk's math, data, RNG
// stream, or the combine order. The cross-workload harness
// (internal/models/determinism_test.go) pins this for all nine
// workloads across replicas {1,2,4} × intra-op {1,4}.
//
// # Scheduling
//
// Replicas execute concurrently as clients of the shared worker pool
// (internal/sched): the trainer leases replicas-1 helpers, offers
// replica tasks non-blockingly, runs replica 0 itself, and absorbs any
// replica the pool declined — caller-participates-first, so pool
// exhaustion degrades to serial execution, never deadlock, and total
// execution goroutines stay bounded by the pool size (replica sessions
// lease their own intra-op/inter-op helpers under the same rules).
package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// phaseRingSize bounds the per-step phase telemetry ring: enough for a
// bench run's whole trajectory, constant memory forever after.
const phaseRingSize = 256

// ErrClosed is returned by Step after Close.
var ErrClosed = errors.New("dist: trainer closed")

// Trainable is what a workload must implement to train data-parallel:
// the standard model interface, a seed-keyed batch sampler, and the
// gradient/update fetch surface nn.BuildTraining records. All nine
// suite workloads qualify.
type Trainable interface {
	core.Model
	core.TrainSampler
	TrainPlan() *nn.TrainPlan
}

// StepListener is an optional workload hook: OnTrainStep(step) runs on
// every replica after global step `step`'s combined update has been
// applied, for state that must advance in lockstep outside the graph —
// deepq syncs its target network here. Implementations may only
// depend on replica-local state that is itself in lockstep.
type StepListener interface {
	OnTrainStep(step int)
}

// Options configures a Trainer.
type Options struct {
	// Replicas is the number of model replicas (default 1). It must
	// divide Chunks.
	Replicas int
	// Chunks is the canonical micro-batch grid per global step
	// (default 4). It — not Replicas — fixes the gradient combine
	// order, so runs with equal Chunks are bit-identical at every
	// replica count dividing it.
	Chunks int
	// GlobalBatch is the examples per global step; Chunks must divide
	// it. 0 derives it as Chunks × the workload's preset batch (each
	// chunk is one preset minibatch).
	GlobalBatch int
	// Preset selects the workload scale (default ref).
	Preset core.Preset
	// Seed keys model initialization and the per-(step, chunk) data
	// and RNG streams (default 1).
	Seed int64
	// LRScale scales the workload recipe's base learning rate (0 means
	// 1): the update path applies base × LRScale as a single float32
	// product — the same arithmetic a fused training array
	// (internal/fuse) applies per trainee, so a standalone dist run at
	// a given scale is the bit-exact reference for that fused trainee.
	LRScale float32
	// IntraOpWorkers is each replica session's real intra-op width
	// (default 1); InterOpWorkers its inter-op scheduler width.
	// Neither affects result bits.
	IntraOpWorkers int
	InterOpWorkers int
	// Pool is the shared worker pool replicas (and their sessions)
	// draw helpers from (default sched.Default()); tests use scoped
	// pools.
	Pool *sched.Pool
}

// replica is one model copy and its execution state.
type replica struct {
	model   Trainable
	sess    *runtime.Session
	fetches []*graph.Node // loss + raw grads, in TrainPlan order
	inputs  map[string]*graph.Node

	applyNode  *graph.Node
	applyFeeds runtime.Feeds

	lo, hi int // owned chunk range [lo, hi)

	feeds      runtime.Feeds // per-chunk training feeds, reused
	chunkLoss  []float64
	chunkGrads [][]*tensor.Tensor // [owned chunk][param]

	gradWall   time.Duration // grad phase wall of the current step
	sampleWall time.Duration // TrainSample share of gradWall
	err        error
}

// Timing accumulates the trainer's phase walls, the raw material of
// the achieved-vs-achievable scaling report (profiling.TrainScaling):
// the gradient phase parallelizes across replicas, while the reduce
// and apply phases bound the speedup Amdahl-style.
type Timing struct {
	Steps int
	// GradSum is the summed gradient-phase wall across replicas and
	// steps (the serial work); GradMax sums each step's slowest
	// replica (the parallel phase's wall).
	GradSum, GradMax time.Duration
	// Reduce and Apply are the all-reduce and update phase walls.
	Reduce, Apply time.Duration
	// Wall is the total step wall.
	Wall time.Duration
}

// Trainer drives data-parallel training of one workload. It is
// confined to a single goroutine: Step, checkpointing and Close must
// not be called concurrently (internally Step fans replicas out on the
// shared pool).
type Trainer struct {
	name     string
	opts     Options
	part     dataset.Partition
	pool     *sched.Pool
	lease    *sched.Lease
	replicas []*replica
	params   int

	comb        []*tensor.Tensor // combined gradients, one per parameter
	reduceItems []reduceItem     // the all-reduce work list: element ranges
	step        int
	losses      []float64
	timing      Timing
	phases      *telemetry.PhaseRing
	closed      bool
}

// New builds a trainer: Replicas instances of the workload, each Setup
// with an identical config (bit-identical initial variables) at the
// chunk micro-batch size, each with its own session on the shared
// pool.
func New(name string, opts Options) (*Trainer, error) {
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Chunks < 1 {
		opts.Chunks = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Pool == nil {
		opts.Pool = sched.Default()
	}
	if opts.Chunks%opts.Replicas != 0 {
		return nil, fmt.Errorf("dist: replicas %d does not divide chunks %d", opts.Replicas, opts.Chunks)
	}
	chunkBatch := 0 // 0 = the workload's preset batch
	if opts.GlobalBatch > 0 {
		if opts.GlobalBatch%opts.Chunks != 0 {
			return nil, fmt.Errorf("dist: chunks %d does not divide global batch %d", opts.Chunks, opts.GlobalBatch)
		}
		chunkBatch = opts.GlobalBatch / opts.Chunks
	}
	t := &Trainer{name: name, opts: opts, pool: opts.Pool, phases: telemetry.NewPhaseRing(phaseRingSize)}
	// Until construction succeeds, any error return must release the
	// sessions (and their shared-pool leases) built so far.
	built := false
	defer func() {
		if !built {
			t.Close()
		}
	}()
	for r := 0; r < opts.Replicas; r++ {
		m, err := core.New(name)
		if err != nil {
			return nil, err
		}
		tr, ok := m.(Trainable)
		if !ok {
			return nil, fmt.Errorf("dist: workload %s is not data-parallel trainable (wants core.TrainSampler + TrainPlan)", name)
		}
		if err := m.Setup(core.Config{Preset: opts.Preset, Seed: opts.Seed, Batch: chunkBatch}); err != nil {
			return nil, fmt.Errorf("dist: setup %s replica %d: %w", name, r, err)
		}
		plan := tr.TrainPlan()
		if plan == nil {
			return nil, fmt.Errorf("dist: workload %s has no TrainPlan after Setup", name)
		}
		// Build the fed-gradient apply path eagerly so every replica
		// graph has it (checkpoints then agree across replica counts).
		scale := opts.LRScale
		if scale == 0 {
			scale = 1
		}
		applyNode, gradIn, err := plan.DistApplyScaled(scale)
		if err != nil {
			return nil, fmt.Errorf("dist: %s apply path: %w", name, err)
		}
		sessOpts := []runtime.Option{
			runtime.WithSeed(opts.Seed),
			runtime.WithWorkerPool(opts.Pool),
			runtime.WithLeaseName("dist/" + name),
		}
		if opts.IntraOpWorkers > 1 {
			sessOpts = append(sessOpts, runtime.WithIntraOpWorkers(opts.IntraOpWorkers))
		}
		if opts.InterOpWorkers > 1 {
			sessOpts = append(sessOpts, runtime.WithInterOpWorkers(opts.InterOpWorkers))
		}
		rep := &replica{
			model:      tr,
			sess:       runtime.NewSession(m.Graph(), sessOpts...),
			fetches:    append([]*graph.Node{plan.Loss()}, plan.Grads()...),
			inputs:     map[string]*graph.Node{},
			applyNode:  applyNode,
			applyFeeds: make(runtime.Feeds, len(gradIn)),
			feeds:      runtime.Feeds{},
		}
		for _, in := range m.Signature(core.ModeTraining).Inputs {
			rep.inputs[in.Name] = in.Node
		}
		if r == 0 {
			t.params = len(plan.Params())
			if chunkBatch == 0 {
				chunkBatch = m.Signature(core.ModeTraining).BatchCapacity()
			}
			t.comb = make([]*tensor.Tensor, t.params)
			for p, pn := range plan.Params() {
				t.comb[p] = tensor.New(pn.Shape()...)
			}
		}
		for p, in := range gradIn {
			rep.applyFeeds[in] = t.comb[p]
		}
		t.replicas = append(t.replicas, rep)
	}
	part, err := dataset.NewPartition(chunkBatch*opts.Chunks, opts.Chunks, opts.Replicas)
	if err != nil {
		return nil, err
	}
	t.part = part
	per := part.ChunksPerReplica()
	for r, rep := range t.replicas {
		rep.lo, rep.hi = part.Range(r)
		rep.chunkLoss = make([]float64, per)
		rep.chunkGrads = make([][]*tensor.Tensor, per)
	}
	// The all-reduce work list: every parameter split into element
	// ranges of at most reduceRangeElems, so one very large parameter
	// (vgg's fc weights dominate the others combined) spreads over all
	// helpers instead of serializing the reduce phase behind a single
	// worker. Each range combines the same chunks in the same ascending
	// order as the whole-parameter reduce — elements are independent,
	// so the split never changes result bits.
	for p, c := range t.comb {
		n := len(c.Data())
		for lo := 0; lo < n; lo += reduceRangeElems {
			hi := lo + reduceRangeElems
			if hi > n {
				hi = n
			}
			t.reduceItems = append(t.reduceItems, reduceItem{param: p, lo: lo, hi: hi})
		}
	}
	t.lease = t.pool.LeaseNamed("dist/"+name, opts.Replicas-1)
	built = true
	return t, nil
}

// Name returns the trained workload's name.
func (t *Trainer) Name() string { return t.name }

// Partition returns the chunk grid.
func (t *Trainer) Partition() dataset.Partition { return t.part }

// Steps returns the number of applied global steps.
func (t *Trainer) Steps() int { return t.step }

// Losses returns the per-step global losses so far.
func (t *Trainer) Losses() []float64 { return t.losses }

// Timing returns the accumulated phase walls.
func (t *Trainer) Timing() Timing { return t.timing }

// ResetTiming zeroes the accumulated phase walls — e.g. after warmup
// steps, so steady-state scaling numbers exclude one-time plan
// compilation (losses and the step counter are untouched).
func (t *Trainer) ResetTiming() { t.timing = Timing{} }

// PhaseLog returns the retained per-step phase breakdowns (sample,
// grad, reduce, apply, wall), oldest first — the raw material of
// `fathom train -trace`. Unlike Timing's totals, each entry is one
// step, so stragglers and warmup spikes are visible individually.
func (t *Trainer) PhaseLog() []telemetry.PhaseSample { return t.phases.Samples() }

// RegisterMetrics exposes the trainer's step throughput and phase ring
// on reg, labeled trainer="dist/<name>". The reads are scrape-time and
// mutex-cheap (once per scrape, not per step). Trainers are ephemeral
// next to the process registry, so Close unregisters the series.
func (t *Trainer) RegisterMetrics(reg *telemetry.Registry) {
	labels := telemetry.Labels{"trainer": "dist/" + t.name}
	phases := t.phases
	reg.CounterFunc("fathom_train_steps_total", "Global training steps executed.", labels,
		func() uint64 { return uint64(phases.Total()) })
	reg.GaugeFunc("fathom_train_step_seconds", "Wall time of the most recent training step.", labels,
		func() float64 {
			s := phases.Samples()
			if len(s) == 0 {
				return 0
			}
			return s[len(s)-1].Wall.Seconds()
		})
}

// UnregisterMetrics removes the series RegisterMetrics added.
func (t *Trainer) UnregisterMetrics(reg *telemetry.Registry) {
	labels := telemetry.Labels{"trainer": "dist/" + t.name}
	reg.Unregister("fathom_train_steps_total", labels)
	reg.Unregister("fathom_train_step_seconds", labels)
}

// Replica exposes replica r's model (tests compare variable bits
// across trainers; examples inspect the trained graph).
func (t *Trainer) Replica(r int) core.Model { return t.replicas[r].model }

// Close closes every replica session and releases the trainer's lease
// on the shared pool. Idempotent; Step afterwards fails with
// ErrClosed.
func (t *Trainer) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, r := range t.replicas {
		if r.sess != nil {
			r.sess.Close()
		}
	}
	if t.lease != nil {
		t.lease.Close()
	}
}

// runReplicas executes fn for every replica concurrently: replicas
// beyond the first are offered to the shared pool through the
// trainer's lease (never blocking), the caller runs replica 0 and then
// absorbs any replica the pool declined. Helper panics are re-raised
// on the caller after every replica has joined.
func (t *Trainer) runReplicas(fn func(*replica)) {
	if len(t.replicas) == 1 {
		fn(t.replicas[0])
		return
	}
	var (
		wg       sync.WaitGroup
		pmu      sync.Mutex
		pval     any
		pseen    bool
		declined []*replica
	)
	for _, r := range t.replicas[1:] {
		r := r
		wg.Add(1)
		ok := t.lease.TryRun(func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					pmu.Lock()
					if !pseen {
						pseen, pval = true, p
					}
					pmu.Unlock()
				}
			}()
			fn(r)
		})
		if !ok {
			wg.Done()
			declined = append(declined, r)
		}
	}
	defer func() {
		wg.Wait()
		if pseen {
			panic(pval)
		}
	}()
	fn(t.replicas[0])
	for _, r := range declined {
		fn(r)
	}
}

// gradPhase computes replica r's owned chunks: per chunk, reseed the
// session to the chunk seed, sample the chunk's batch, and fetch loss
// + raw gradients. No variable is touched.
func (t *Trainer) gradPhase(r *replica) {
	t0 := time.Now()
	r.err = nil
	r.sampleWall = 0
	r.sess.SetTraining(true)
	for ci, c := 0, r.lo; c < r.hi; ci, c = ci+1, c+1 {
		seed := dataset.ChunkSeed(t.opts.Seed, t.step, c)
		r.sess.Reseed(seed)
		ts := time.Now()
		sample, err := r.model.TrainSample(r.sess, seed)
		r.sampleWall += time.Since(ts)
		if err != nil {
			r.err = fmt.Errorf("dist: %s chunk %d sample: %w", t.name, c, err)
			return
		}
		clear(r.feeds)
		for name, v := range sample {
			node, ok := r.inputs[name]
			if !ok {
				r.err = fmt.Errorf("dist: %s sampled unknown training input %q", t.name, name)
				return
			}
			r.feeds[node] = v
		}
		out, err := r.sess.Run(r.fetches, r.feeds)
		if err != nil {
			r.err = fmt.Errorf("dist: %s chunk %d: %w", t.name, c, err)
			return
		}
		r.chunkLoss[ci] = float64(out[0].Data()[0])
		r.chunkGrads[ci] = out[1:]
	}
	r.gradWall = time.Since(t0)
}

// chunkGrad returns chunk c's gradient for parameter p.
func (t *Trainer) chunkGrad(c, p int) *tensor.Tensor {
	r := t.replicas[t.part.Owner(c)]
	return r.chunkGrads[c-r.lo][p]
}

// reduceRangeElems bounds one all-reduce work item: parameters larger
// than this split into element ranges so a single very large parameter
// (vgg's fc weights) parallelizes across helpers instead of holding
// the whole reduce phase on one worker.
const reduceRangeElems = 1 << 15

// reduceItem is one all-reduce work item: element range [lo, hi) of
// parameter param.
type reduceItem struct{ param, lo, hi int }

// reduceRange combines elements [lo, hi) of parameter p across the
// chunk grid: the per-chunk gradients sum elementwise in ascending
// chunk order — ascending replica, ascending chunk within the replica,
// which is the same thing — then scale by 1/Chunks, yielding the
// gradient of the global-batch mean loss. The order is a constant of
// the chunk grid and elements are independent, so the result bits
// never depend on the replica count, on which worker reduces the
// range, or on how the parameter was split into ranges.
func (t *Trainer) reduceRange(p, lo, hi int) {
	out := t.comb[p].Data()[lo:hi]
	copy(out, t.chunkGrad(0, p).Data()[lo:hi])
	for c := 1; c < t.part.Chunks; c++ {
		g := t.chunkGrad(c, p).Data()[lo:hi]
		for i := range out {
			out[i] += g[i]
		}
	}
	inv := 1 / float32(t.part.Chunks)
	for i := range out {
		out[i] *= inv
	}
}

// reduce runs the all-reduce: the element-range work items are
// distributed over the caller plus lease helpers via a work-stealing
// cursor — safe because each range's combine is self-contained and
// deterministic, so placement affects only timing.
func (t *Trainer) reduce() {
	items := t.reduceItems
	if len(items) == 0 {
		return
	}
	var cursor atomic.Int64
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(items) {
				return
			}
			t.reduceRange(items[i].param, items[i].lo, items[i].hi)
		}
	}
	helpers := len(t.replicas) - 1
	if helpers > len(items)-1 {
		helpers = len(items) - 1
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		if !t.lease.TryRun(func() { defer wg.Done(); work() }) {
			wg.Done()
			break
		}
	}
	work()
	wg.Wait()
}

// applyPhase applies the combined gradients on replica r: one fetch of
// the fed-gradient apply node, then the workload's step hook. Every
// replica executes the identical update, keeping variable state in
// lockstep.
func (t *Trainer) applyPhase(r *replica) {
	r.err = nil
	if _, err := r.sess.Run([]*graph.Node{r.applyNode}, r.applyFeeds); err != nil {
		r.err = fmt.Errorf("dist: %s apply: %w", t.name, err)
		return
	}
	if l, ok := r.model.(StepListener); ok {
		l.OnTrainStep(t.step)
	}
}

// Step executes one global training step — gradients over the chunk
// grid, deterministic all-reduce, one identical update per replica —
// and returns the global loss: the mean of the per-chunk losses,
// combined in ascending chunk order.
func (t *Trainer) Step() (float64, error) {
	if t.closed {
		return 0, ErrClosed
	}
	t0 := time.Now()
	t.runReplicas(t.gradPhase)
	var gradMax, sampleMax time.Duration
	for _, r := range t.replicas {
		if r.err != nil {
			return 0, r.err
		}
		t.timing.GradSum += r.gradWall
		if r.gradWall > gradMax {
			gradMax = r.gradWall
		}
		if r.sampleWall > sampleMax {
			sampleMax = r.sampleWall
		}
	}
	t.timing.GradMax += gradMax

	tr := time.Now()
	t.reduce()
	reduceWall := time.Since(tr)
	t.timing.Reduce += reduceWall

	ta := time.Now()
	t.runReplicas(t.applyPhase)
	applyWall := time.Since(ta)
	t.timing.Apply += applyWall
	for _, r := range t.replicas {
		if r.err != nil {
			return 0, r.err
		}
	}

	// Global loss: ascending-chunk mean — float64 accumulation in a
	// fixed order, so the loss trajectory is replica-count invariant
	// bit for bit.
	var loss float64
	for c := 0; c < t.part.Chunks; c++ {
		r := t.replicas[t.part.Owner(c)]
		loss += r.chunkLoss[c-r.lo]
	}
	loss /= float64(t.part.Chunks)

	// Phase telemetry: the step's wall-time decomposition, keyed by
	// the slowest replica's sample and grad walls (the parallel
	// phases' critical path). Grad includes Sample — the per-chunk
	// loop interleaves them — so Grad−Sample is the graph-execution
	// share. Forward and backward are one fused Run here (loss and
	// gradients fetch together), hence one Grad phase.
	t.phases.Record(telemetry.PhaseSample{
		Step:   t.step,
		Sample: sampleMax,
		Grad:   gradMax,
		Reduce: reduceWall,
		Apply:  applyWall,
		Wall:   time.Since(t0),
	})

	t.step++
	t.losses = append(t.losses, loss)
	t.timing.Steps++
	t.timing.Wall += time.Since(t0)
	return loss, nil
}

// Train runs n global steps, returning the per-step losses.
func (t *Trainer) Train(n int) ([]float64, error) {
	start := len(t.losses)
	for i := 0; i < n; i++ {
		if _, err := t.Step(); err != nil {
			return nil, err
		}
	}
	return t.losses[start:], nil
}

// Checkpointing: a dist checkpoint is a small header — magic, version,
// the global step counter, and the training-stream coordinates (chunk
// count, chunk batch, seed) — followed by a standard runtime
// checkpoint of replica 0's graph (all replicas are bitwise identical,
// any one serves). The step counter makes a resumed run continue the
// same per-(step, chunk) data and RNG streams; the stream coordinates
// are validated on load, because a resumed run under a different chunk
// grid or seed would draw different data and silently diverge from the
// donor — the contract deliberately leaves only the replica count
// free. Loading restores the same bytes into EVERY replica's graph, so
// a resumed trainer is in lockstep immediately — at any replica count
// dividing the chunk grid, which is what makes checkpoints the interop
// point between replica counts: save under 2 replicas, resume under 1
// or 4, and the continuations are bit-identical to each other.
// (Optimizer slot state is operation state, not a graph variable, and
// is not checkpointed — restore resets it identically on every
// replica, so cross-replica-count equality is unaffected; for slotless
// optimizers such as plain SGD a resumed run also matches the
// uninterrupted one bit for bit.)
const (
	checkpointMagic   = "FDST"
	checkpointVersion = 1
)

// SaveCheckpoint writes the trainer's state: step header plus replica
// 0's variables.
func (t *Trainer) SaveCheckpoint(w io.Writer) error {
	if t.closed {
		return ErrClosed
	}
	if _, err := w.Write([]byte(checkpointMagic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(checkpointVersion)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(t.step)); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(t.part.Chunks), uint32(t.part.ChunkBatch())} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, t.opts.Seed); err != nil {
		return err
	}
	return runtime.SaveCheckpoint(w, t.replicas[0].model.Graph())
}

// LoadCheckpoint restores every replica's variables and the global
// step counter from a dist checkpoint.
func (t *Trainer) LoadCheckpoint(r io.Reader) error {
	if t.closed {
		return ErrClosed
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("dist: reading checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("dist: not a dist checkpoint (magic %q)", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != checkpointVersion {
		return fmt.Errorf("dist: unsupported checkpoint version %d", version)
	}
	var step uint64
	if err := binary.Read(r, binary.LittleEndian, &step); err != nil {
		return err
	}
	var chunks, chunkBatch uint32
	var seed int64
	if err := binary.Read(r, binary.LittleEndian, &chunks); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &chunkBatch); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return err
	}
	if int(chunks) != t.part.Chunks || int(chunkBatch) != t.part.ChunkBatch() || seed != t.opts.Seed {
		return fmt.Errorf(
			"dist: checkpoint trained with chunks %d × batch %d, seed %d; this trainer uses chunks %d × batch %d, seed %d — only the replica count may change across a resume",
			chunks, chunkBatch, seed, t.part.Chunks, t.part.ChunkBatch(), t.opts.Seed)
	}
	// The runtime checkpoint is consumed once; replay the bytes into
	// every replica graph.
	body, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	for i, rep := range t.replicas {
		if err := runtime.LoadCheckpoint(bytes.NewReader(body), rep.model.Graph(), false); err != nil {
			return fmt.Errorf("dist: restoring replica %d: %w", i, err)
		}
	}
	t.step = int(step)
	return nil
}
