package dist_test

import (
	"bytes"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sched"

	_ "repro/internal/models/all"
)

// snapshot captures a trainer's observable trajectory: per-step global
// losses plus the final bits of every replica-0 variable.
type snapshot struct {
	losses []float64
	vars   map[string][]float32
}

func snap(t *dist.Trainer) snapshot {
	s := snapshot{losses: append([]float64(nil), t.Losses()...), vars: map[string][]float32{}}
	for _, v := range t.Replica(0).Graph().Variables() {
		s.vars[v.Name()] = append([]float32(nil), v.Value().Data()...)
	}
	return s
}

func compareSnapshots(t *testing.T, label string, a, b snapshot) {
	t.Helper()
	if len(a.losses) != len(b.losses) {
		t.Fatalf("%s: %d losses vs %d", label, len(a.losses), len(b.losses))
	}
	for i := range a.losses {
		if a.losses[i] != b.losses[i] {
			t.Fatalf("%s: step-%d loss %v != %v", label, i, a.losses[i], b.losses[i])
		}
	}
	if len(a.vars) != len(b.vars) {
		t.Fatalf("%s: variable count %d != %d", label, len(a.vars), len(b.vars))
	}
	for n, av := range a.vars {
		bv, ok := b.vars[n]
		if !ok {
			t.Fatalf("%s: variable %q missing", label, n)
		}
		if len(av) != len(bv) {
			t.Fatalf("%s: variable %q size %d != %d", label, n, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s: variable %q differs at element %d: %v != %v", label, n, i, av[i], bv[i])
			}
		}
	}
}

// run trains `name` for steps global steps at the given replica count
// and session widths on a scoped pool, returning the trajectory.
func run(t *testing.T, name string, replicas, intraop, steps int) snapshot {
	t.Helper()
	pool := sched.New(8)
	defer pool.Close()
	tr, err := dist.New(name, dist.Options{
		Replicas:       replicas,
		Chunks:         4,
		Preset:         core.PresetTiny,
		Seed:           7,
		IntraOpWorkers: intraop,
		Pool:           pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Train(steps); err != nil {
		t.Fatal(err)
	}
	return snap(tr)
}

// TestReplicaCountInvariance is the subsystem's headline invariant on
// one representative stochastic workload (autoenc: VAE sampling in the
// forward pass): fixed global batch, chunk grid and seed ⇒
// bit-identical losses and final variables across replica counts and
// across replica × intra-op widths. The full nine-workload sweep lives
// in the cross-workload determinism harness
// (internal/models/determinism_test.go).
func TestReplicaCountInvariance(t *testing.T) {
	base := run(t, "autoenc", 1, 1, 3)
	for _, cfg := range []struct {
		label             string
		replicas, intraop int
	}{
		{"replicas 2", 2, 1},
		{"replicas 4", 4, 1},
		{"replicas 2 × intraop 4", 2, 4},
	} {
		got := run(t, "autoenc", cfg.replicas, cfg.intraop, 3)
		compareSnapshots(t, cfg.label+" vs replicas 1", base, got)
	}
}

// TestReplicasStayInLockstep: after training, every replica's
// variables are bitwise identical to replica 0's — the all-reduce +
// identical-apply contract, observed directly.
func TestReplicasStayInLockstep(t *testing.T) {
	pool := sched.New(8)
	defer pool.Close()
	tr, err := dist.New("memnet", dist.Options{Replicas: 4, Chunks: 4, Preset: core.PresetTiny, Seed: 5, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Train(3); err != nil {
		t.Fatal(err)
	}
	ref := tr.Replica(0).Graph().Variables()
	for r := 1; r < 4; r++ {
		vars := tr.Replica(r).Graph().Variables()
		if len(vars) != len(ref) {
			t.Fatalf("replica %d has %d variables, replica 0 has %d", r, len(vars), len(ref))
		}
		for i, v := range vars {
			a, b := ref[i].Value().Data(), v.Value().Data()
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("replica %d variable %q differs at %d", r, v.Name(), j)
				}
			}
		}
	}
}

// TestCheckpointReplicaInterop is the checkpoint interoperability
// contract: save under 2 replicas, resume under 1, 2 and 4 — the
// continuations must be bit-identical to each other (and, for a
// slotless-optimizer workload like memnet's SGD, to the uninterrupted
// donor as well).
func TestCheckpointReplicaInterop(t *testing.T) {
	const warm, resume = 2, 3
	pool := sched.New(8)
	defer pool.Close()
	opts := func(replicas int) dist.Options {
		return dist.Options{Replicas: replicas, Chunks: 4, Preset: core.PresetTiny, Seed: 9, Pool: pool}
	}

	donor, err := dist.New("memnet", opts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close()
	if _, err := donor.Train(warm); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := donor.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	// The donor continues uninterrupted: the reference continuation.
	if _, err := donor.Train(resume); err != nil {
		t.Fatal(err)
	}
	want := snap(donor)
	want.losses = want.losses[warm:]

	for _, replicas := range []int{1, 2, 4} {
		tr, err := dist.New("memnet", opts(replicas))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
			t.Fatal(err)
		}
		if got := tr.Steps(); got != warm {
			t.Fatalf("resumed step counter = %d, want %d", got, warm)
		}
		if _, err := tr.Train(resume); err != nil {
			t.Fatal(err)
		}
		compareSnapshots(t, "resume with 2→"+string(rune('0'+replicas))+" replicas", want, snap(tr))
		tr.Close()
	}

	// Only the replica count may change across a resume: a different
	// chunk grid or seed would draw different per-chunk data and
	// silently diverge, so LoadCheckpoint refuses it.
	for _, bad := range []dist.Options{
		{Replicas: 2, Chunks: 8, Preset: core.PresetTiny, Seed: 9, Pool: pool},
		{Replicas: 2, Chunks: 4, Preset: core.PresetTiny, Seed: 10, Pool: pool},
	} {
		tr, err := dist.New("memnet", bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err == nil {
			t.Fatalf("LoadCheckpoint accepted mismatched stream coordinates %+v", bad)
		}
		tr.Close()
	}
}

// TestTrainerDegradesOnExhaustedPool: a pool that never lends a worker
// forces every replica onto the caller — training still completes with
// identical results (caller-participates-first, degrade-to-serial).
func TestTrainerDegradesOnExhaustedPool(t *testing.T) {
	want := run(t, "autoenc", 2, 1, 2)
	starved := sched.New(0)
	defer starved.Close()
	tr, err := dist.New("autoenc", dist.Options{Replicas: 2, Chunks: 4, Preset: core.PresetTiny, Seed: 7, Pool: starved})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Train(2); err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, "starved pool vs 8-worker pool", want, snap(tr))
}

// TestTrainerShutdownReleasesGoroutines extends the suite's
// goroutine-leak gate to trainer shutdown: training with wide
// replica × intra-op settings must return the process to baseline +
// pool size after Close, and never exceed it while running.
func TestTrainerShutdownReleasesGoroutines(t *testing.T) {
	base := goruntime.NumGoroutine()
	pool := sched.New(4)
	tr, err := dist.New("autoenc", dist.Options{Replicas: 4, Chunks: 4, Preset: core.PresetTiny, Seed: 3, IntraOpWorkers: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(2); err != nil {
		t.Fatal(err)
	}
	// Execution goroutines are bounded by the pool while training.
	if got := goruntime.NumGoroutine(); got > base+pool.Size()+1 {
		t.Fatalf("goroutines while training = %d, want <= base %d + pool %d", got, base, pool.Size())
	}
	if err := tr.SaveCheckpoint(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close() // idempotent
	if _, err := tr.Step(); err != dist.ErrClosed {
		t.Fatalf("Step after Close = %v, want ErrClosed", err)
	}
	pool.Close()
	deadline := time.Now().Add(2 * time.Second)
	for goruntime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > base {
		t.Fatalf("goroutines after shutdown = %d, want <= baseline %d", got, base)
	}
}

// TestTrainerOptionValidation: misconfigured partitions and unknown
// workloads fail loudly at construction.
func TestTrainerOptionValidation(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	if _, err := dist.New("autoenc", dist.Options{Replicas: 3, Chunks: 4, Pool: pool}); err == nil {
		t.Fatal("want error: replicas do not divide chunks")
	}
	if _, err := dist.New("autoenc", dist.Options{Replicas: 2, Chunks: 4, GlobalBatch: 6, Pool: pool}); err == nil {
		t.Fatal("want error: chunks do not divide global batch")
	}
	if _, err := dist.New("nope", dist.Options{Pool: pool}); err == nil {
		t.Fatal("want error: unknown workload")
	}
}
