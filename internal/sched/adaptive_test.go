package sched

import (
	"sync"
	"testing"
	"time"
)

// saturate drives n submissions through l, holding accepted tasks on
// block so the lease's demand (peak + declines) is visible to the next
// negotiation. It returns how many were accepted.
func saturate(t *testing.T, l *Lease, n int, block chan struct{}, wg *sync.WaitGroup) int {
	t.Helper()
	accepted := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		if l.TryRun(func() { <-block; wg.Done() }) {
			accepted++
		} else {
			wg.Done()
		}
	}
	return accepted
}

// TestAdaptiveLeaseFullGrantWithoutContention: while the summed wants
// fit the pool, renegotiation leaves every lease at its full ask — the
// static-claim behaviour existing tenants rely on.
func TestAdaptiveLeaseFullGrantWithoutContention(t *testing.T) {
	p := New(8)
	defer p.Close()
	a := p.LeaseNamed("a", 2)
	b := p.LeaseNamed("b", 3)
	defer a.Close()
	defer b.Close()
	p.negotiate()
	if a.Granted() != 2 || b.Granted() != 3 {
		t.Fatalf("uncontended grants (%d, %d), want full asks (2, 3)", a.Granted(), b.Granted())
	}
}

// TestAdaptiveLeaseGrantsFollowDemand: on an oversubscribed pool, the
// tenant with observed demand is granted more than the idle one, and
// the idle one keeps the liveness floor of one.
func TestAdaptiveLeaseGrantsFollowDemand(t *testing.T) {
	p := New(4)
	defer p.Close()
	a := p.LeaseNamed("busy", 4)
	b := p.LeaseNamed("idle", 4)
	defer a.Close()
	defer b.Close()
	block := make(chan struct{})
	var wg sync.WaitGroup
	if acc := saturate(t, a, 8, block, &wg); acc == 0 {
		t.Fatal("no task accepted on a fresh pool")
	}
	p.negotiate()
	ga, gb := a.Granted(), b.Granted()
	close(block)
	wg.Wait()
	if ga <= gb {
		t.Fatalf("busy tenant granted %d, idle tenant %d; demand should win the split", ga, gb)
	}
	if gb < 1 {
		t.Fatalf("idle tenant granted %d, want the floor of 1", gb)
	}
	if ga+gb > p.Size() {
		t.Fatalf("grants %d+%d exceed pool size %d under contention", ga, gb, p.Size())
	}
}

// TestAdaptiveLeaseGrantsShiftWithLoad: when demand moves from one
// tenant to the other, renegotiation follows it — the grant is a
// window-by-window measurement, not a static claim.
func TestAdaptiveLeaseGrantsShiftWithLoad(t *testing.T) {
	p := New(4)
	defer p.Close()
	a := p.LeaseNamed("first", 4)
	b := p.LeaseNamed("second", 4)
	defer a.Close()
	defer b.Close()

	block := make(chan struct{})
	var wg sync.WaitGroup
	saturate(t, a, 8, block, &wg)
	p.negotiate()
	close(block)
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for b.Granted() <= a.Granted() {
		if time.Now().After(deadline) {
			t.Fatalf("grants never shifted to the loaded tenant: first=%d second=%d", a.Granted(), b.Granted())
		}
		block2 := make(chan struct{})
		var wg2 sync.WaitGroup
		saturate(t, b, 8, block2, &wg2)
		p.negotiate()
		close(block2)
		wg2.Wait()
	}
}

// TestAdaptiveLeaseFloorKeepsAllTenantsLive: even with far more
// tenants than workers, every open lease keeps a grant of at least
// one, so no tenant is ever locked out of helper lending entirely.
func TestAdaptiveLeaseFloorKeepsAllTenantsLive(t *testing.T) {
	p := New(2)
	defer p.Close()
	var leases []*Lease
	for i := 0; i < 6; i++ {
		leases = append(leases, p.LeaseNamed("tenant", 2))
	}
	p.negotiate()
	for i, l := range leases {
		if l.Granted() < 1 {
			t.Fatalf("tenant %d granted %d, want >= 1", i, l.Granted())
		}
		l.Close()
	}
}

// TestLeaseStatsReportsTenants: the per-tenant snapshot carries names,
// asks and grants, and closed leases leave the registry.
func TestLeaseStatsReportsTenants(t *testing.T) {
	p := New(8)
	defer p.Close()
	a := p.LeaseNamed("engine/x", 3)
	b := p.LeaseNamed("dist/y", 2)
	stats := p.LeaseStats()
	if len(stats) != 2 {
		t.Fatalf("LeaseStats reported %d leases, want 2", len(stats))
	}
	if stats[0].Name != "engine/x" || stats[0].Want != 3 || stats[0].Granted != 3 {
		t.Fatalf("unexpected first stat %+v", stats[0])
	}
	if stats[1].Name != "dist/y" || stats[1].Want != 2 {
		t.Fatalf("unexpected second stat %+v", stats[1])
	}
	a.Close()
	if got := len(p.LeaseStats()); got != 1 {
		t.Fatalf("after close LeaseStats reported %d leases, want 1", got)
	}
	b.Close()
	if got := len(p.LeaseStats()); got != 0 {
		t.Fatalf("after both closed LeaseStats reported %d leases, want 0", got)
	}
}

// TestAdaptiveLeaseRenegotiatesOnTryRunPath: grants renegotiate from
// the submission path alone — no background goroutine — once the
// window has elapsed.
func TestAdaptiveLeaseRenegotiatesOnTryRunPath(t *testing.T) {
	p := New(2)
	defer p.Close()
	a := p.LeaseNamed("a", 2)
	b := p.LeaseNamed("b", 2)
	defer a.Close()
	defer b.Close()
	// Oversubscribed: a periodic TryRun must eventually trigger a
	// negotiation that moves the grants off their optimistic initial
	// value (2 + 2 > size 2).
	deadline := time.Now().Add(5 * time.Second)
	for a.Granted()+b.Granted() > p.Size() {
		if time.Now().After(deadline) {
			t.Fatalf("TryRun path never renegotiated: grants %d + %d on a size-%d pool",
				a.Granted(), b.Granted(), p.Size())
		}
		var wg sync.WaitGroup
		wg.Add(1)
		if !a.TryRun(func() { wg.Done() }) {
			wg.Done()
		}
		wg.Wait()
		time.Sleep(2 * negotiateInterval)
	}
}
