// Package sched provides the process-wide bounded worker pool shared
// by every execution layer of the suite: intra-op kernel chunks
// (tensor.Pool's parallel strategy), the inter-op ready-queue drain
// (runtime's plan scheduler), and every serve.Engine worker session.
//
// The design goal is a hard bound on execution goroutines under load.
// Before this pool existed, every Session.Run spawned its own inter-op
// workers and every engine session would have multiplied that again;
// N engines × S sessions × W workers goroutines in the worst case.
// With the pool, all layers draw helpers from one fixed set of
// persistent workers: total pool goroutines never exceed the
// configured size, no matter how many sessions run concurrently.
//
// # Help-first, never-blocking acquisition
//
// TryRun is deliberately non-blocking: if no worker is free (and the
// pool is at capacity) it returns false and the caller does the work
// on its own goroutine. Every parallel construct in the suite is
// written caller-participates-first — the submitting goroutine always
// executes its share of the work — so acquisition failure degrades to
// serial execution, never to deadlock, even when pools nest (an
// inter-op helper executing a kernel that requests intra-op helpers
// from the same pool).
//
// # Adaptive leases
//
// A Lease is one tenant's bounded claim on the pool — a Session takes
// a lease sized to its configured inter-op × intra-op width at
// creation and releases it in Close. Leases cap how many pool workers
// one tenant can occupy at once, so a single wide tenant cannot starve
// every other, and they give the session lifecycle a concrete resource
// to release. Workers themselves are never owned: between regions they
// return to the shared pool, so an idle tenant holds no goroutines.
//
// The claim is adaptive, not static. Each lease asks for a width (its
// "want") and holds a current grant the pool renegotiates periodically
// from observed occupancy: while the summed wants fit the pool, every
// lease is granted its full ask (exactly the old static behaviour);
// under oversubscription the pool water-fills its workers over the
// tenants' measured demand — the peak concurrency and the declined
// submissions of the last window — with a floor of one helper per
// tenant, so co-resident tenants (a serve engine, a dist trainer, a
// fused training array) each get throughput proportional to what they
// actually tried to use, and none starves. Renegotiation happens
// lazily on the TryRun path (no background goroutine) and only ever
// moves grants, never results: every client is caller-participates-
// first, so a shrunken grant degrades a tenant toward serial
// execution, bit-identically.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// negotiateInterval is how often lease grants are recomputed from the
// pool's observed occupancy. It is a throughput smoothing constant,
// not a correctness one: grants only gate helper lending.
const negotiateInterval = time.Millisecond

// Pool is a fixed-capacity set of persistent worker goroutines.
// Workers are spawned lazily on demand, up to Size, and then live for
// the life of the pool (or until Close), parking in an idle set
// between tasks. All methods are safe for concurrent use.
type Pool struct {
	size    int
	idle    chan *worker
	spawned atomic.Int32
	busy    atomic.Int32
	closed  atomic.Bool

	// Lease registry and renegotiation state. leases holds every open
	// lease in creation order; nextNegotiate is the unix-nano time of
	// the next grant recomputation, CAS-claimed on the TryRun path so
	// exactly one submitter per window pays for it.
	mu            sync.Mutex
	leases        []*Lease
	nextNegotiate atomic.Int64
}

type worker struct {
	tasks chan func()
}

// New returns a pool of at most size workers. size < 1 yields a pool
// that never lends a worker (TryRun always reports false), which
// degrades every client to caller-only execution.
func New(size int) *Pool {
	if size < 0 {
		size = 0
	}
	c := size
	if c < 1 {
		c = 1
	}
	return &Pool{size: size, idle: make(chan *worker, c)}
}

// Size reports the configured worker bound.
func (p *Pool) Size() int { return p.size }

// Spawned reports how many worker goroutines currently exist; it never
// exceeds Size.
func (p *Pool) Spawned() int { return int(p.spawned.Load()) }

// Busy reports how many workers are executing a task right now.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// TryRun executes task on a pool worker if one is idle or can still be
// spawned under the size bound, and reports whether the task was
// accepted. It never blocks: false means the caller should run the
// work itself. Accepted tasks always run.
//
// Tasks must not panic; clients that execute arbitrary kernels wrap
// their tasks with recover and re-raise on the submitting goroutine
// (tensor.Pool and the runtime scheduler both do).
func (p *Pool) TryRun(task func()) bool {
	if task == nil || p.closed.Load() {
		return false
	}
	select {
	case w := <-p.idle:
		w.tasks <- task
		return true
	default:
	}
	for {
		n := p.spawned.Load()
		if int(n) >= p.size {
			return false
		}
		if p.spawned.CompareAndSwap(n, n+1) {
			w := &worker{tasks: make(chan func(), 1)}
			go p.loop(w)
			w.tasks <- task
			return true
		}
	}
}

func (p *Pool) loop(w *worker) {
	for task := range w.tasks {
		p.busy.Add(1)
		task()
		p.busy.Add(-1)
		if p.closed.Load() {
			p.spawned.Add(-1)
			return
		}
		p.idle <- w
	}
	p.spawned.Add(-1)
}

// Close stops lending workers and winds them all down, waiting for
// mid-task workers to finish their task first. It reaps every spawned
// worker — including one that raced past the post-task closed check
// and parked concurrently with Close — so no goroutine outlives the
// pool. Close exists for tests and scoped pools; the process-wide
// Default pool is never closed.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	// Each spawned worker either observes closed after its task and
	// exits on its own, or parks in idle (possibly racing the flag) and
	// is reaped here. Busy workers land in one of those two states when
	// their task returns, so this loop terminates once every task does.
	for p.spawned.Load() > 0 {
		select {
		case w := <-p.idle:
			close(w.tasks)
		default:
			runtime.Gosched()
		}
	}
}

// Lease returns an adaptive claim for up to n concurrent workers under
// the default "session" tenant name. See LeaseNamed.
func (p *Pool) Lease(n int) *Lease {
	return p.LeaseNamed("session", n)
}

// LeaseNamed returns an adaptive claim for up to n concurrent workers,
// registered under a tenant name for occupancy reporting (LeaseStats,
// the serve /stats endpoint). The initial grant is the full ask; the
// pool renegotiates it against the other open leases' observed demand
// as the workload evolves. Release with Close.
func (p *Pool) LeaseNamed(name string, n int) *Lease {
	if n < 0 {
		n = 0
	}
	l := &Lease{pool: p, name: name, want: int32(n)}
	l.granted.Store(int32(n))
	p.mu.Lock()
	p.leases = append(p.leases, l)
	p.mu.Unlock()
	return l
}

// maybeNegotiate recomputes lease grants if the current window has
// elapsed. The CAS ensures one winner per window; losers (and callers
// inside the window) return immediately, keeping TryRun cheap.
func (p *Pool) maybeNegotiate() {
	now := time.Now().UnixNano()
	next := p.nextNegotiate.Load()
	if now < next {
		return
	}
	if !p.nextNegotiate.CompareAndSwap(next, now+int64(negotiateInterval)) {
		return
	}
	p.negotiate()
}

// negotiate reassigns every open lease's grant from the occupancy the
// pool observed since the last window: each lease's demand is its peak
// concurrency plus the submissions it had to decline. While the summed
// wants fit the pool there is nothing to arbitrate and every tenant
// gets its full ask; past that, workers water-fill over demand with a
// floor of one per tenant. Grants gate only helper lending — every
// client runs declined work itself — so this loop affects throughput
// shares, never results.
func (p *Pool) negotiate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.leases)
	if n == 0 {
		return
	}
	want := make([]int, n)
	demand := make([]int, n)
	total := 0
	for i, l := range p.leases {
		want[i] = int(l.want)
		total += want[i]
		// Swap resets the window; the new window starts from the
		// currently running tasks so in-flight demand is not forgotten.
		d := int(l.peak.Swap(l.active.Load())) + int(l.pressure.Swap(0))
		if d > want[i] {
			d = want[i]
		}
		demand[i] = d
	}
	grant := make([]int, n)
	if total <= p.size {
		copy(grant, want)
	} else {
		remaining := p.size
		for i := range grant {
			if want[i] > 0 {
				grant[i] = 1
				remaining--
			}
		}
		// Water-fill measured demand first, then let leftover capacity
		// top tenants up toward their full ask.
		for _, bound := range [2][]int{demand, want} {
			for remaining > 0 {
				progressed := false
				for i := 0; i < n && remaining > 0; i++ {
					if grant[i] < bound[i] {
						grant[i]++
						remaining--
						progressed = true
					}
				}
				if !progressed {
					break
				}
			}
		}
	}
	for i, l := range p.leases {
		l.granted.Store(int32(grant[i]))
	}
}

// LeaseStat is one open lease's occupancy snapshot.
type LeaseStat struct {
	// Name is the tenant name the lease was registered under.
	Name string `json:"name"`
	// Want is the width the tenant asked for; Granted is the pool's
	// current adaptive grant; Active is how many leased tasks are
	// running right now.
	Want    int `json:"want"`
	Granted int `json:"granted"`
	Active  int `json:"active"`
}

// LeaseStats snapshots every open lease in creation order — the
// per-tenant view behind the serve /stats lease report.
func (p *Pool) LeaseStats() []LeaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]LeaseStat, len(p.leases))
	for i, l := range p.leases {
		out[i] = LeaseStat{
			Name:    l.name,
			Want:    int(l.want),
			Granted: int(l.granted.Load()),
			Active:  int(l.active.Load()),
		}
	}
	return out
}

// unregister removes a closed lease from the registry.
func (p *Pool) unregister(l *Lease) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range p.leases {
		if e == l {
			p.leases = append(p.leases[:i], p.leases[i+1:]...)
			return
		}
	}
}

// Lease bounds one tenant's concurrent use of a Pool. The zero Lease
// is invalid; obtain one from Pool.Lease or Pool.LeaseNamed. A Lease
// holds no goroutines while idle — it is bookkeeping plus a lifecycle
// handle, released by Close.
type Lease struct {
	pool     *Pool
	name     string
	want     int32
	granted  atomic.Int32
	active   atomic.Int32
	peak     atomic.Int32 // max concurrent leased tasks this window
	pressure atomic.Int32 // declined submissions this window
	closed   atomic.Bool
}

// TryRun submits task to the underlying pool if the lease has grant
// capacity left and a worker is available; it reports whether the task
// was accepted, and never blocks. After Close it always reports false.
// Declines are recorded as demand pressure feeding the next grant
// renegotiation.
func (l *Lease) TryRun(task func()) bool {
	if task == nil || l.closed.Load() {
		return false
	}
	l.pool.maybeNegotiate()
	a := l.active.Add(1)
	if a > l.granted.Load() {
		l.active.Add(-1)
		l.pressure.Add(1)
		return false
	}
	for {
		p := l.peak.Load()
		if a <= p || l.peak.CompareAndSwap(p, a) {
			break
		}
	}
	ok := l.pool.TryRun(func() {
		defer l.active.Add(-1)
		task()
	})
	if !ok {
		l.active.Add(-1)
		l.pressure.Add(1)
	}
	return ok
}

// Name returns the tenant name the lease was registered under.
func (l *Lease) Name() string { return l.name }

// Want returns the width the tenant asked for.
func (l *Lease) Want() int { return int(l.want) }

// Granted returns the pool's current adaptive grant for the lease.
func (l *Lease) Granted() int { return int(l.granted.Load()) }

// Active reports how many leased tasks are currently running.
func (l *Lease) Active() int { return int(l.active.Load()) }

// Close releases the lease: subsequent TryRun calls report false and
// the tenant leaves the pool's grant negotiation. Callers must not
// Close while work submitted through the lease is still in flight
// (Session.Close runs only between Runs, when every region has
// joined). Close is idempotent.
func (l *Lease) Close() {
	if l.closed.Swap(true) {
		return
	}
	l.pool.unregister(l)
}

// defaultSize is resolved on first Default() use; SetDefaultSize may
// override it before then.
var defaultSize atomic.Int32

// defaultPool is the process-wide pool, created on first use.
var defaultPool atomic.Pointer[Pool]

// Default returns the process-wide shared pool, creating it on first
// use with SetDefaultSize's value, or max(2, GOMAXPROCS) when unset —
// at least two workers so concurrent subsystems overlap even on a
// single-core host, never more goroutines than cores are likely to
// serve.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	n := int(defaultSize.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n < 2 {
			n = 2
		}
	}
	p := New(n)
	if !defaultPool.CompareAndSwap(nil, p) {
		return defaultPool.Load()
	}
	return p
}

// SetDefaultSize fixes the size the process-wide pool will be created
// with. It reports whether the value took effect: once Default has
// been called the pool exists and its size is immutable, mirroring
// tensor.Pool's width-immutability rule.
func SetDefaultSize(n int) bool {
	if defaultPool.Load() != nil {
		return false
	}
	defaultSize.Store(int32(n))
	return defaultPool.Load() == nil
}
