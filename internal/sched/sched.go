// Package sched provides the process-wide bounded worker pool shared
// by every execution layer of the suite: intra-op kernel chunks
// (tensor.Pool's parallel strategy), the inter-op ready-queue drain
// (runtime's plan scheduler), and every serve.Engine worker session.
//
// The design goal is a hard bound on execution goroutines under load.
// Before this pool existed, every Session.Run spawned its own inter-op
// workers and every engine session would have multiplied that again;
// N engines × S sessions × W workers goroutines in the worst case.
// With the pool, all layers draw helpers from one fixed set of
// persistent workers: total pool goroutines never exceed the
// configured size, no matter how many sessions run concurrently.
//
// # Help-first, never-blocking acquisition
//
// TryRun is deliberately non-blocking: if no worker is free (and the
// pool is at capacity) it returns false and the caller does the work
// on its own goroutine. Every parallel construct in the suite is
// written caller-participates-first — the submitting goroutine always
// executes its share of the work — so acquisition failure degrades to
// serial execution, never to deadlock, even when pools nest (an
// inter-op helper executing a kernel that requests intra-op helpers
// from the same pool).
//
// # Leases
//
// A Lease is one client's bounded claim on the pool — a Session takes
// a lease sized to its configured inter-op × intra-op width at
// creation and releases it in Session.Close. Leases cap how many pool
// workers one session can occupy at once, so a single wide session
// cannot starve every other tenant, and they give the session
// lifecycle a concrete resource to release. Workers themselves are
// never owned: between regions they return to the shared pool, so an
// idle session holds no goroutines.
package sched

import (
	"runtime"
	"sync/atomic"
)

// Pool is a fixed-capacity set of persistent worker goroutines.
// Workers are spawned lazily on demand, up to Size, and then live for
// the life of the pool (or until Close), parking in an idle set
// between tasks. All methods are safe for concurrent use.
type Pool struct {
	size    int
	idle    chan *worker
	spawned atomic.Int32
	busy    atomic.Int32
	closed  atomic.Bool
}

type worker struct {
	tasks chan func()
}

// New returns a pool of at most size workers. size < 1 yields a pool
// that never lends a worker (TryRun always reports false), which
// degrades every client to caller-only execution.
func New(size int) *Pool {
	if size < 0 {
		size = 0
	}
	c := size
	if c < 1 {
		c = 1
	}
	return &Pool{size: size, idle: make(chan *worker, c)}
}

// Size reports the configured worker bound.
func (p *Pool) Size() int { return p.size }

// Spawned reports how many worker goroutines currently exist; it never
// exceeds Size.
func (p *Pool) Spawned() int { return int(p.spawned.Load()) }

// Busy reports how many workers are executing a task right now.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// TryRun executes task on a pool worker if one is idle or can still be
// spawned under the size bound, and reports whether the task was
// accepted. It never blocks: false means the caller should run the
// work itself. Accepted tasks always run.
//
// Tasks must not panic; clients that execute arbitrary kernels wrap
// their tasks with recover and re-raise on the submitting goroutine
// (tensor.Pool and the runtime scheduler both do).
func (p *Pool) TryRun(task func()) bool {
	if task == nil || p.closed.Load() {
		return false
	}
	select {
	case w := <-p.idle:
		w.tasks <- task
		return true
	default:
	}
	for {
		n := p.spawned.Load()
		if int(n) >= p.size {
			return false
		}
		if p.spawned.CompareAndSwap(n, n+1) {
			w := &worker{tasks: make(chan func(), 1)}
			go p.loop(w)
			w.tasks <- task
			return true
		}
	}
}

func (p *Pool) loop(w *worker) {
	for task := range w.tasks {
		p.busy.Add(1)
		task()
		p.busy.Add(-1)
		if p.closed.Load() {
			p.spawned.Add(-1)
			return
		}
		p.idle <- w
	}
	p.spawned.Add(-1)
}

// Close stops lending workers and winds them all down, waiting for
// mid-task workers to finish their task first. It reaps every spawned
// worker — including one that raced past the post-task closed check
// and parked concurrently with Close — so no goroutine outlives the
// pool. Close exists for tests and scoped pools; the process-wide
// Default pool is never closed.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	// Each spawned worker either observes closed after its task and
	// exits on its own, or parks in idle (possibly racing the flag) and
	// is reaped here. Busy workers land in one of those two states when
	// their task returns, so this loop terminates once every task does.
	for p.spawned.Load() > 0 {
		select {
		case w := <-p.idle:
			close(w.tasks)
		default:
			runtime.Gosched()
		}
	}
}

// Lease returns a claim for at most n concurrent workers of the pool.
func (p *Pool) Lease(n int) *Lease {
	if n < 0 {
		n = 0
	}
	return &Lease{pool: p, cap: int32(n)}
}

// Lease bounds one client's concurrent use of a Pool. The zero Lease
// is invalid; obtain one from Pool.Lease. A Lease holds no goroutines
// while idle — it is bookkeeping plus a lifecycle handle, released by
// Close.
type Lease struct {
	pool   *Pool
	cap    int32
	active atomic.Int32
	closed atomic.Bool
}

// TryRun submits task to the underlying pool if the lease has claim
// capacity left and a worker is available; it reports whether the task
// was accepted, and never blocks. After Close it always reports false.
func (l *Lease) TryRun(task func()) bool {
	if task == nil || l.closed.Load() {
		return false
	}
	if l.active.Add(1) > l.cap {
		l.active.Add(-1)
		return false
	}
	ok := l.pool.TryRun(func() {
		defer l.active.Add(-1)
		task()
	})
	if !ok {
		l.active.Add(-1)
	}
	return ok
}

// Active reports how many leased tasks are currently running.
func (l *Lease) Active() int { return int(l.active.Load()) }

// Close releases the lease: subsequent TryRun calls report false.
// Callers must not Close while work submitted through the lease is
// still in flight (Session.Close runs only between Runs, when every
// region has joined). Close is idempotent.
func (l *Lease) Close() {
	l.closed.Store(true)
}

// defaultSize is resolved on first Default() use; SetDefaultSize may
// override it before then.
var defaultSize atomic.Int32

// defaultPool is the process-wide pool, created on first use.
var defaultPool atomic.Pointer[Pool]

// Default returns the process-wide shared pool, creating it on first
// use with SetDefaultSize's value, or max(2, GOMAXPROCS) when unset —
// at least two workers so concurrent subsystems overlap even on a
// single-core host, never more goroutines than cores are likely to
// serve.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	n := int(defaultSize.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n < 2 {
			n = 2
		}
	}
	p := New(n)
	if !defaultPool.CompareAndSwap(nil, p) {
		return defaultPool.Load()
	}
	return p
}

// SetDefaultSize fixes the size the process-wide pool will be created
// with. It reports whether the value took effect: once Default has
// been called the pool exists and its size is immutable, mirroring
// tensor.Pool's width-immutability rule.
func SetDefaultSize(n int) bool {
	if defaultPool.Load() != nil {
		return false
	}
	defaultSize.Store(int32(n))
	return defaultPool.Load() == nil
}
