package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsTasks: accepted tasks all execute.
func TestPoolRunsTasks(t *testing.T) {
	p := New(4)
	defer p.Close()
	var ran atomic.Int32
	var wg sync.WaitGroup
	accepted := 0
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if p.TryRun(func() { ran.Add(1); wg.Done() }) {
			accepted++
		} else {
			ran.Add(1)
			wg.Done() // caller-side execution, as clients do
		}
	}
	wg.Wait()
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", ran.Load())
	}
	if accepted == 0 {
		t.Fatal("a 4-worker pool should accept at least one task")
	}
}

// TestPoolBoundsGoroutines: the pool never spawns more workers than
// its size, no matter how many tasks are thrown at it, and workers are
// reused across waves rather than respawned.
func TestPoolBoundsGoroutines(t *testing.T) {
	p := New(3)
	defer p.Close()
	for wave := 0; wave < 5; wave++ {
		var wg sync.WaitGroup
		block := make(chan struct{})
		accepted := 0
		for i := 0; i < 50; i++ {
			wg.Add(1)
			if p.TryRun(func() { <-block; wg.Done() }) {
				accepted++
			} else {
				wg.Done()
			}
		}
		if accepted > 3 {
			t.Fatalf("wave %d: accepted %d concurrent tasks on a 3-worker pool", wave, accepted)
		}
		if got := p.Spawned(); got > 3 {
			t.Fatalf("wave %d: spawned %d workers, size 3", wave, got)
		}
		close(block)
		wg.Wait()
	}
	if got := p.Spawned(); got > 3 {
		t.Fatalf("spawned %d workers after 5 waves, size 3", got)
	}
}

// TestPoolSizeZeroNeverAccepts: a zero-size pool degrades every client
// to caller-only execution.
func TestPoolSizeZeroNeverAccepts(t *testing.T) {
	p := New(0)
	if p.TryRun(func() {}) {
		t.Fatal("zero-size pool accepted a task")
	}
}

// TestPoolTryRunNeverBlocks: with every worker busy, TryRun returns
// false immediately instead of waiting.
func TestPoolTryRunNeverBlocks(t *testing.T) {
	p := New(1)
	defer p.Close()
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if !p.TryRun(func() { <-block; wg.Done() }) {
		t.Fatal("first task should be accepted")
	}
	done := make(chan bool, 1)
	go func() { done <- p.TryRun(func() {}) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("saturated pool accepted a second task")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TryRun blocked on a saturated pool")
	}
	close(block)
	wg.Wait()
}

// TestLeaseCapsClaim: a lease admits at most its cap concurrently,
// even on a bigger pool, and frees claim capacity as tasks finish.
func TestLeaseCapsClaim(t *testing.T) {
	p := New(8)
	defer p.Close()
	l := p.Lease(2)
	block := make(chan struct{})
	var wg sync.WaitGroup
	accepted := 0
	for i := 0; i < 6; i++ {
		wg.Add(1)
		if l.TryRun(func() { <-block; wg.Done() }) {
			accepted++
		} else {
			wg.Done()
		}
	}
	if accepted != 2 {
		t.Fatalf("lease of 2 accepted %d concurrent tasks", accepted)
	}
	if l.Active() != 2 {
		t.Fatalf("Active = %d, want 2", l.Active())
	}
	close(block)
	wg.Wait()
	// Claim capacity returns once tasks complete.
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		var wg2 sync.WaitGroup
		wg2.Add(1)
		ok = l.TryRun(func() { wg2.Done() })
		if !ok {
			wg2.Done()
			time.Sleep(time.Millisecond)
		} else {
			wg2.Wait()
		}
	}
	if !ok {
		t.Fatal("lease never regained claim capacity after tasks finished")
	}
}

// TestLeaseCloseRejects: a closed lease stops lending.
func TestLeaseCloseRejects(t *testing.T) {
	p := New(2)
	defer p.Close()
	l := p.Lease(2)
	l.Close()
	if l.TryRun(func() {}) {
		t.Fatal("closed lease accepted a task")
	}
	l.Close() // idempotent
}

// TestPoolConcurrentSubmitters hammers TryRun from many goroutines —
// the race detector is the assertion.
func TestPoolConcurrentSubmitters(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	var ran atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := p.Lease(2)
			defer l.Close()
			var inner sync.WaitGroup
			for i := 0; i < 200; i++ {
				inner.Add(1)
				task := func() { ran.Add(1); inner.Done() }
				if !l.TryRun(task) {
					task()
				}
			}
			inner.Wait()
		}()
	}
	wg.Wait()
	if ran.Load() != 8*200 {
		t.Fatalf("ran %d of %d tasks", ran.Load(), 8*200)
	}
	if p.Spawned() > 4 {
		t.Fatalf("spawned %d workers, size 4", p.Spawned())
	}
}

// TestDefaultPoolSingleton: Default returns one process-wide pool with
// at least two workers.
func TestDefaultPoolSingleton(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default must return the same pool")
	}
	if a.Size() < 2 {
		t.Fatalf("default pool size %d, want >= 2", a.Size())
	}
	if SetDefaultSize(64) {
		t.Fatal("SetDefaultSize must refuse once the default pool exists")
	}
}

// TestPoolGoroutineCountStable: pool goroutines are persistent and
// bounded — churning tasks does not grow the process goroutine count
// beyond the pool size.
func TestPoolGoroutineCountStable(t *testing.T) {
	base := runtime.NumGoroutine()
	p := New(4)
	defer p.Close()
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			task := func() { wg.Done() }
			if !p.TryRun(task) {
				task()
			}
		}
		wg.Wait()
	}
	// Workers may be parked; allow the pool size plus slack for test
	// runtime goroutines.
	if got := runtime.NumGoroutine(); got > base+4+2 {
		t.Fatalf("goroutines grew from %d to %d with a 4-worker pool", base, got)
	}
}
