// Package loadgen is the suite's open-loop traffic harness: it drives
// a serve.Engine at a target arrival rate — independent of how fast
// the engine answers, which is what makes overload visible — and
// reports goodput, shed rate, and latency quantiles per priority
// lane.
//
// # Open loop, closed loop
//
// A closed-loop client waits for each response before sending the
// next request, so an overloaded server silently throttles its own
// load generator and the measured latency stays flat while throughput
// quietly collapses. The harness is open-loop instead: arrivals are
// drawn from a seeded Poisson (exponential inter-arrivals) or uniform
// process at the configured QPS and submitted on their schedule
// whether or not earlier requests have completed. Under 2× capacity
// this exposes exactly the behavior the serving layer's admission
// control exists for: the engine must reject early and keep goodput
// near capacity, not queue unboundedly.
//
// The arrival schedule, lane choice, and example choice are all
// driven by one seeded RNG, so a run's offered traffic is
// reproducible bit-for-bit; only the measured outcomes vary with the
// host. A capacity-relative sweep (Stages at 0.5×/1×/2× of
// EstimateCapacity's measurement) is the shape `fathom loadtest`
// persists as BENCH_serve.json.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Arrival selects the inter-arrival distribution.
type Arrival int

const (
	// Poisson draws exponential inter-arrival times (a memoryless
	// open-loop stream, the standard serving-benchmark model).
	Poisson Arrival = iota
	// Uniform spaces arrivals exactly 1/QPS apart.
	Uniform
)

// String names the distribution for reports.
func (a Arrival) String() string {
	if a == Uniform {
		return "uniform"
	}
	return "poisson"
}

// ParseArrival maps the CLI names to an Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "", "poisson":
		return Poisson, nil
	case "uniform":
		return Uniform, nil
	}
	return 0, fmt.Errorf("loadgen: unknown arrival distribution %q (want poisson or uniform)", s)
}

// Stage is one segment of the ramp schedule: offered QPS held for
// Duration.
type Stage struct {
	Name     string
	QPS      float64
	Duration time.Duration
}

// Engine is the surface the harness drives; *serve.Engine satisfies
// it.
type Engine interface {
	InferPriority(ctx context.Context, inputs map[string]*tensor.Tensor, pri serve.Priority) (map[string]*tensor.Tensor, error)
	Stats() serve.Stats
}

// Config parameterizes a run.
type Config struct {
	// Stages is the ramp schedule, run in order (required).
	Stages []Stage
	// Arrival selects the inter-arrival distribution (default
	// Poisson).
	Arrival Arrival
	// Seed drives the arrival schedule, lane mix, and example choice;
	// the same seed offers bit-identical traffic.
	Seed int64
	// BatchFrac is the fraction of requests submitted on the batch
	// lane (0 = all interactive, 1 = all batch).
	BatchFrac float64
	// Deadline is the per-request context deadline; zero relies on
	// the engine's DefaultDeadline alone. Goodput counts completions
	// within this budget.
	Deadline time.Duration
	// MaxInFlight is the harness's own safety valve (default 4096):
	// arrivals beyond it are counted as dropped rather than spawning
	// unbounded goroutines. With a functioning admission layer it
	// should never engage — a nonzero Dropped count in a report is
	// itself a finding.
	MaxInFlight int
}

// LaneReport aggregates one lane's caller-observed outcomes in a
// stage.
type LaneReport struct {
	Sent       uint64  `json:"sent"`
	OK         uint64  `json:"ok"`
	Overloaded uint64  `json:"overloaded"` // rejected or shed (serve.ErrOverloaded)
	Expired    uint64  `json:"expired"`    // deadline exceeded (serve.ErrExpired)
	Errors     uint64  `json:"errors"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	P999MS     float64 `json:"p999_ms"`
	MaxMS      float64 `json:"max_ms"`
}

// StageReport is one stage's measurement.
type StageReport struct {
	Name       string  `json:"name"`
	OfferedQPS float64 `json:"offered_qps"`
	WallS      float64 `json:"wall_s"`
	Sent       uint64  `json:"sent"`
	Dropped    uint64  `json:"dropped"` // harness valve, not engine shedding

	// AchievedQPS counts every successful completion; GoodputQPS only
	// those inside the deadline budget — the number overload must not
	// collapse. ShedRate is the fraction of sent requests the engine
	// refused (overloaded) or expired.
	AchievedQPS float64 `json:"achieved_qps"`
	GoodputQPS  float64 `json:"goodput_qps"`
	ShedRate    float64 `json:"shed_rate"`

	// Engine-side counter deltas over the stage (admission's own
	// view: queue-full rejections vs budget sheds vs expiries).
	EngineRejected uint64 `json:"engine_rejected"`
	EngineShed     uint64 `json:"engine_shed"`
	EngineExpired  uint64 `json:"engine_expired"`
	QueueDepthEnd  int    `json:"queue_depth_end"`

	// Queue-wait quantiles of this stage's dispatched requests,
	// computed from the engine wait-histogram delta across the stage —
	// the queueing share of the end-to-end latencies above, so sweeps
	// separate time-in-queue from execution time.
	QueueWaitP50MS  float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS  float64 `json:"queue_wait_p99_ms"`
	QueueWaitP999MS float64 `json:"queue_wait_p999_ms"`

	Interactive LaneReport `json:"interactive"`
	Batch       LaneReport `json:"batch"`
}

// Report is a full run: the ramp schedule's stages plus the offered-
// traffic parameters that reproduce it.
type Report struct {
	Model       string        `json:"model"`
	Arrival     string        `json:"arrival"`
	Seed        int64         `json:"seed"`
	BatchFrac   float64       `json:"batch_frac"`
	DeadlineMS  float64       `json:"deadline_ms"`
	CapacityQPS float64       `json:"capacity_qps,omitempty"` // filled by capacity sweeps
	Stages      []StageReport `json:"stages"`
}

// laneCollector accumulates one lane's outcomes; latencies are kept
// exact (the harness sees thousands of samples, not millions) so the
// quantiles are not bucketed.
type laneCollector struct {
	mu         sync.Mutex
	lat        []time.Duration
	good       uint64
	overloaded atomic.Uint64
	expired    atomic.Uint64
	errored    atomic.Uint64
	sent       atomic.Uint64
}

func (c *laneCollector) ok(d time.Duration, withinDeadline bool) {
	c.mu.Lock()
	c.lat = append(c.lat, d)
	if withinDeadline {
		c.good++
	}
	c.mu.Unlock()
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (c *laneCollector) report() (LaneReport, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lr := LaneReport{
		Sent:       c.sent.Load(),
		OK:         uint64(len(c.lat)),
		Overloaded: c.overloaded.Load(),
		Expired:    c.expired.Load(),
		Errors:     c.errored.Load(),
	}
	if len(c.lat) > 0 {
		sort.Slice(c.lat, func(i, j int) bool { return c.lat[i] < c.lat[j] })
		var sum time.Duration
		for _, d := range c.lat {
			sum += d
		}
		q := func(q float64) float64 {
			i := int(q * float64(len(c.lat)))
			if i >= len(c.lat) {
				i = len(c.lat) - 1
			}
			return durMS(c.lat[i])
		}
		lr.MeanMS = durMS(sum / time.Duration(len(c.lat)))
		lr.P50MS = q(0.50)
		lr.P99MS = q(0.99)
		lr.P999MS = q(0.999)
		lr.MaxMS = durMS(c.lat[len(c.lat)-1])
	}
	return lr, c.good
}

// Run drives the engine through cfg's ramp schedule, cycling over the
// given single-example input sets, and returns the per-stage report.
// The in-flight requests of each stage are joined before the next
// stage starts, so stage metrics do not bleed into each other.
func Run(e Engine, examples []map[string]*tensor.Tensor, cfg Config) (Report, error) {
	if len(cfg.Stages) == 0 {
		return Report{}, errors.New("loadgen: no stages")
	}
	if len(examples) == 0 {
		return Report{}, errors.New("loadgen: no examples")
	}
	for _, st := range cfg.Stages {
		if st.QPS <= 0 || st.Duration <= 0 {
			return Report{}, fmt.Errorf("loadgen: stage %q needs positive QPS and duration", st.Name)
		}
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	rep := Report{
		Arrival:    cfg.Arrival.String(),
		Seed:       cfg.Seed,
		BatchFrac:  cfg.BatchFrac,
		DeadlineMS: durMS(cfg.Deadline),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var inflight atomic.Int64
	for _, st := range cfg.Stages {
		rep.Stages = append(rep.Stages, runStage(e, examples, cfg, st, rng, &inflight))
	}
	return rep, nil
}

func runStage(e Engine, examples []map[string]*tensor.Tensor, cfg Config, st Stage, rng *rand.Rand, inflight *atomic.Int64) StageReport {
	var lanes [2]laneCollector
	var dropped atomic.Uint64
	before := e.Stats()
	start := time.Now()
	var wg sync.WaitGroup
	// The arrival clock is an offset from the stage start; sleeping to
	// each arrival's absolute target time (rather than for the
	// inter-arrival gap) keeps the offered rate honest even when the
	// scheduler goroutine is briefly descheduled.
	var offset time.Duration
	for {
		var gap time.Duration
		if cfg.Arrival == Uniform {
			gap = time.Duration(float64(time.Second) / st.QPS)
		} else {
			gap = time.Duration(rng.ExpFloat64() * float64(time.Second) / st.QPS)
		}
		offset += gap
		if offset > st.Duration {
			break
		}
		lane := serve.PriorityInteractive
		if rng.Float64() < cfg.BatchFrac {
			lane = serve.PriorityBatch
		}
		ex := examples[rng.Intn(len(examples))]
		if wait := time.Until(start.Add(offset)); wait > 0 {
			time.Sleep(wait)
		}
		if inflight.Load() >= int64(cfg.MaxInFlight) {
			dropped.Add(1)
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		c := &lanes[lane]
		c.sent.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			ctx := context.Background()
			if cfg.Deadline > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
				defer cancel()
			}
			t0 := time.Now()
			_, err := e.InferPriority(ctx, ex, lane)
			d := time.Since(t0)
			switch {
			case err == nil:
				c.ok(d, cfg.Deadline <= 0 || d <= cfg.Deadline)
			case errors.Is(err, serve.ErrOverloaded):
				c.overloaded.Add(1)
			case errors.Is(err, serve.ErrExpired) || errors.Is(err, context.DeadlineExceeded):
				c.expired.Add(1)
			default:
				c.errored.Add(1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	after := e.Stats()
	sr := StageReport{
		Name:           st.Name,
		OfferedQPS:     st.QPS,
		WallS:          wall.Seconds(),
		Dropped:        dropped.Load(),
		EngineRejected: after.Rejected - before.Rejected,
		EngineShed:     after.Shed - before.Shed,
		EngineExpired:  after.Expired - before.Expired,
		QueueDepthEnd:  after.QueueDepth,
	}
	// Stage-local queue-wait quantiles: the wait histogram is
	// cumulative, so the bucket delta across the stage is exactly the
	// requests this stage dispatched.
	var waitDelta [telemetry.LogBuckets]uint64
	for i := range waitDelta {
		waitDelta[i] = after.WaitHist[i] - before.WaitHist[i]
	}
	sr.QueueWaitP50MS = durMS(telemetry.QuantileOf(&waitDelta, 0.50))
	sr.QueueWaitP99MS = durMS(telemetry.QuantileOf(&waitDelta, 0.99))
	sr.QueueWaitP999MS = durMS(telemetry.QuantileOf(&waitDelta, 0.999))
	var good uint64
	sr.Interactive, good = lanes[serve.PriorityInteractive].report()
	bGood := uint64(0)
	sr.Batch, bGood = lanes[serve.PriorityBatch].report()
	good += bGood
	sr.Sent = sr.Interactive.Sent + sr.Batch.Sent
	if secs := wall.Seconds(); secs > 0 {
		sr.AchievedQPS = float64(sr.Interactive.OK+sr.Batch.OK) / secs
		sr.GoodputQPS = float64(good) / secs
	}
	if sr.Sent > 0 {
		refused := sr.Interactive.Overloaded + sr.Batch.Overloaded +
			sr.Interactive.Expired + sr.Batch.Expired
		sr.ShedRate = float64(refused) / float64(sr.Sent)
	}
	return sr
}

// EstimateCapacity measures the engine's saturated throughput with a
// short closed loop: `clients` goroutines (size it ≈ sessions ×
// MaxBatch so every batch slot can fill) submit back-to-back
// interactive requests for dur, and the completion rate is the
// capacity estimate a ramp schedule's stages scale against.
func EstimateCapacity(e Engine, examples []map[string]*tensor.Tensor, clients int, dur time.Duration) (float64, error) {
	if len(examples) == 0 {
		return 0, errors.New("loadgen: no examples")
	}
	if clients < 1 {
		clients = 1
	}
	if dur <= 0 {
		dur = 500 * time.Millisecond
	}
	var ok, failed atomic.Uint64
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ex := examples[c%len(examples)]
			for time.Now().Before(deadline) {
				if _, err := e.InferPriority(context.Background(), ex, serve.PriorityInteractive); err == nil {
					ok.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	n := ok.Load()
	if n == 0 {
		return 0, fmt.Errorf("loadgen: capacity probe completed no requests (%d failures)", failed.Load())
	}
	return float64(n) / dur.Seconds(), nil
}

// CapacityStages is the standard 0.5×/1×/2× sweep around a measured
// capacity: under-load, saturation, and sustained overload — the
// three regimes BENCH_serve.json tracks across PRs.
func CapacityStages(capacityQPS float64, dur time.Duration) []Stage {
	return []Stage{
		{Name: "0.5x", QPS: 0.5 * capacityQPS, Duration: dur},
		{Name: "1x", QPS: capacityQPS, Duration: dur},
		{Name: "2x", QPS: 2 * capacityQPS, Duration: dur},
	}
}
