// Package loadgen's tests pin the harness contract: the offered
// traffic is a pure function of the seed, outcomes are classified by
// error identity, goodput only counts completions inside the deadline,
// and a finished run (plus the engine under it) leaves no goroutines
// behind.
package loadgen

import (
	"context"
	goruntime "runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

// fakeEngine answers instantly (or after delay) with a scripted error
// per lane, honoring context cancellation — just enough surface to
// test the harness without a real model.
type fakeEngine struct {
	delay    time.Duration
	laneErr  [2]error
	perLane  [2]atomic.Uint64
	inFlight atomic.Int64
	maxSeen  atomic.Int64
}

func (f *fakeEngine) InferPriority(ctx context.Context, inputs map[string]*tensor.Tensor, pri serve.Priority) (map[string]*tensor.Tensor, error) {
	f.perLane[pri].Add(1)
	cur := f.inFlight.Add(1)
	defer f.inFlight.Add(-1)
	for {
		prev := f.maxSeen.Load()
		if cur <= prev || f.maxSeen.CompareAndSwap(prev, cur) {
			break
		}
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := f.laneErr[pri]; err != nil {
		return nil, err
	}
	return map[string]*tensor.Tensor{}, nil
}

func (f *fakeEngine) Stats() serve.Stats { return serve.Stats{} }

func examples(n int) []map[string]*tensor.Tensor {
	out := make([]map[string]*tensor.Tensor, n)
	for i := range out {
		out[i] = map[string]*tensor.Tensor{"x": tensor.New(1)}
	}
	return out
}

func TestParseArrival(t *testing.T) {
	for s, want := range map[string]Arrival{"": Poisson, "poisson": Poisson, "uniform": Uniform} {
		got, err := ParseArrival(s)
		if err != nil || got != want {
			t.Fatalf("ParseArrival(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseArrival("bursty"); err == nil {
		t.Fatal("unknown distribution must error")
	}
}

// TestRunDeterministicOffered: the offered traffic — arrival count and
// lane mix — is a pure function of the seed, independent of how fast
// the engine answers.
func TestRunDeterministicOffered(t *testing.T) {
	cfg := Config{
		Stages:    []Stage{{Name: "s", QPS: 5000, Duration: 60 * time.Millisecond}},
		Seed:      42,
		BatchFrac: 0.3,
	}
	var sent [2][2]uint64
	for trial := 0; trial < 2; trial++ {
		f := &fakeEngine{}
		rep, err := Run(f, examples(4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stages[0].Dropped != 0 {
			t.Fatalf("trial %d: instant engine must not hit the in-flight valve", trial)
		}
		sent[trial][0] = rep.Stages[0].Interactive.Sent
		sent[trial][1] = rep.Stages[0].Batch.Sent
	}
	if sent[0] != sent[1] {
		t.Fatalf("same seed offered different traffic: %v vs %v", sent[0], sent[1])
	}
	if sent[0][0] == 0 || sent[0][1] == 0 {
		t.Fatalf("30%% batch mix must load both lanes: %v", sent[0])
	}
}

// TestRunClassifiesOutcomes: engine errors land in the right report
// buckets — ErrOverloaded as shed, ErrExpired as expired, and the shed
// rate reflects refusals over sent.
func TestRunClassifiesOutcomes(t *testing.T) {
	f := &fakeEngine{}
	f.laneErr[serve.PriorityBatch] = serve.ErrOverloaded
	rep, err := Run(f, examples(2), Config{
		Stages:    []Stage{{Name: "s", QPS: 3000, Duration: 50 * time.Millisecond}},
		Seed:      7,
		BatchFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stages[0]
	if st.Interactive.OK == 0 || st.Interactive.Overloaded != 0 {
		t.Fatalf("interactive lane must succeed cleanly: %+v", st.Interactive)
	}
	if st.Batch.Overloaded == 0 || st.Batch.OK != 0 {
		t.Fatalf("batch lane must be counted overloaded: %+v", st.Batch)
	}
	if st.ShedRate <= 0 || st.ShedRate >= 1 {
		t.Fatalf("shed rate = %v, want in (0,1)", st.ShedRate)
	}
	if st.GoodputQPS <= 0 || st.AchievedQPS <= 0 {
		t.Fatalf("interactive completions must count: goodput %v achieved %v", st.GoodputQPS, st.AchievedQPS)
	}

	f2 := &fakeEngine{}
	f2.laneErr[serve.PriorityInteractive] = serve.ErrExpired
	f2.laneErr[serve.PriorityBatch] = serve.ErrExpired
	rep2, err := Run(f2, examples(2), Config{
		Stages: []Stage{{Name: "s", QPS: 2000, Duration: 40 * time.Millisecond}},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	st2 := rep2.Stages[0]
	if st2.Interactive.Expired == 0 || st2.GoodputQPS != 0 {
		t.Fatalf("expiries must be classified and yield zero goodput: %+v", st2)
	}
}

// TestRunGoodputExcludesLateCompletions: a completion slower than the
// deadline counts toward achieved throughput but not goodput.
func TestRunGoodputExcludesLateCompletions(t *testing.T) {
	f := &fakeEngine{delay: 30 * time.Millisecond}
	rep, err := Run(f, examples(2), Config{
		Stages:   []Stage{{Name: "s", QPS: 200, Duration: 50 * time.Millisecond}},
		Seed:     3,
		Deadline: 100 * time.Millisecond, // generous: completions are good
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := rep.Stages[0]; st.GoodputQPS <= 0 || st.GoodputQPS != st.AchievedQPS {
		t.Fatalf("inside-deadline completions are goodput: %+v", st)
	}
	// Now with the context deadline below the service time every
	// request expires server-side (the fake honors cancellation).
	f2 := &fakeEngine{delay: 30 * time.Millisecond}
	rep2, err := Run(f2, examples(2), Config{
		Stages:   []Stage{{Name: "s", QPS: 200, Duration: 50 * time.Millisecond}},
		Seed:     3,
		Deadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := rep2.Stages[0]; st.GoodputQPS != 0 || st.Interactive.Expired+st.Batch.Expired == 0 {
		t.Fatalf("past-deadline requests are not goodput: %+v", st)
	}
}

// TestRunInFlightValve: when the engine wedges (never answers within
// the stage), the harness's own valve bounds concurrency and counts
// drops instead of spawning goroutines without limit.
func TestRunInFlightValve(t *testing.T) {
	f := &fakeEngine{delay: 10 * time.Second} // wedged, but honors ctx
	rep, err := Run(f, examples(2), Config{
		Stages:      []Stage{{Name: "s", QPS: 2000, Duration: 40 * time.Millisecond}},
		Seed:        11,
		Deadline:    50 * time.Millisecond, // lets wg.Wait finish the stage
		MaxInFlight: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.maxSeen.Load() > 8 {
		t.Fatalf("in-flight reached %d, valve is 8", f.maxSeen.Load())
	}
	if rep.Stages[0].Dropped == 0 {
		t.Fatal("a wedged engine at 2000 qps must trip the valve")
	}
}

func TestCapacityStages(t *testing.T) {
	st := CapacityStages(100, time.Second)
	if len(st) != 3 || st[0].QPS != 50 || st[1].QPS != 100 || st[2].QPS != 200 {
		t.Fatalf("stages = %+v", st)
	}
}

func TestEstimateCapacity(t *testing.T) {
	f := &fakeEngine{delay: time.Millisecond}
	qps, err := EstimateCapacity(f, examples(2), 4, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 4 closed-loop clients at ~1ms service time ≈ 4000 qps; anything
	// grossly off means the probe is broken.
	if qps < 100 || qps > 100000 {
		t.Fatalf("capacity estimate %v qps implausible for 4 clients at 1ms", qps)
	}
}

// TestLoadtestShutdownLeavesNoGoroutines is the leak gate for the
// whole load path: a real engine driven by a real (tiny) open-loop run
// plus a capacity probe, then Close — afterwards only the runtime's
// baseline goroutines may remain.
func TestLoadtestShutdownLeavesNoGoroutines(t *testing.T) {
	base := goruntime.NumGoroutine()
	m, err := core.New("memnet")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 3, Batch: 2}); err != nil {
		t.Fatal(err)
	}
	e, err := serve.New(m, serve.Options{
		Sessions: 2, MaxBatch: 2, MaxDelay: 200 * time.Microsecond,
		QueueLen: 8, DefaultDeadline: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	exs, err := serve.Examples(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateCapacity(e, exs, 4, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(e, exs, Config{
		Stages:    CapacityStages(200, 40*time.Millisecond),
		Seed:      5,
		BatchFrac: 0.5,
		Deadline:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(rep.Stages))
	}
	e.Close()
	deadline := time.Now().Add(5 * time.Second)
	for goruntime.NumGoroutine() > base+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > base+1 {
		t.Fatalf("goroutines %d after load test + Close (baseline %d): leak", got, base)
	}
}
