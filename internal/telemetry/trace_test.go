package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanTreeInvariants builds a trace the way the serving layer does
// (request -> admission/queue, batch -> run -> op spans) and checks
// the structural contract: unique IDs, no orphan parents, and every
// op span reachable from the run span.
func TestSpanTreeInvariants(t *testing.T) {
	tc := NewTraceCollector(1, 8)
	tr := tc.New("memnet")
	now := time.Now()

	root := tr.StartSpanAt("request", 0, now)
	adm := tr.StartSpanAt("admission", root, now)
	tr.EndSpan(adm)
	q := tr.StartSpanAt("queue", root, now)
	tr.EndSpanAt(q, now.Add(time.Millisecond))
	batch := tr.AddSpan("batch", root, 0, now.Add(time.Millisecond), 2*time.Millisecond)
	run := tr.AddSpan("run", batch, 0, now.Add(time.Millisecond), 2*time.Millisecond)
	op1 := tr.AddSpan("MatMul", run, 1, now.Add(time.Millisecond), time.Millisecond)
	op2 := tr.AddSpan("Softmax", run, 2, now.Add(2*time.Millisecond), time.Millisecond)
	tr.EndSpan(root)
	tr.Finish()

	spans := tr.Spans()
	ids := map[SpanID]Span{}
	for _, s := range spans {
		if s.ID == 0 {
			t.Fatalf("span %q has zero ID", s.Name)
		}
		if _, dup := ids[s.ID]; dup {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		ids[s.ID] = s
	}
	for _, s := range spans {
		if s.Parent == 0 {
			if s.ID != root {
				t.Errorf("span %q is an unexpected extra root", s.Name)
			}
			continue
		}
		if _, ok := ids[s.Parent]; !ok {
			t.Errorf("span %q has orphan parent %d", s.Name, s.Parent)
		}
	}
	// Every op span must sit under the run span, transitively under
	// the request root.
	for _, op := range []SpanID{op1, op2} {
		s := ids[op]
		if s.Parent != run {
			t.Errorf("op span %q parented to %d, want run span %d", s.Name, s.Parent, run)
		}
		if s.Lane < 1 {
			t.Errorf("op span %q on lane %d, want a worker lane >= 1", s.Name, s.Lane)
		}
	}
	for id, hops := ids[op1], 0; ; hops++ {
		if hops > len(spans) {
			t.Fatal("op span not reachable from root: parent cycle")
		}
		if id.Parent == 0 {
			if id.ID != root {
				t.Fatalf("op span's root is %d, want %d", id.ID, root)
			}
			break
		}
		id = ids[id.Parent]
	}
	// Spans closed via EndSpan* carry durations; closing twice or
	// closing an unknown ID must not corrupt anything.
	tr.EndSpan(q)
	tr.EndSpan(SpanID(999))
	if d := ids[q].Dur; d != time.Millisecond {
		t.Errorf("queue span dur = %v, want 1ms", d)
	}
}

// TestCollectorSamplingAndDrain checks the 1-in-N cadence, the bounded
// ring, and Drain's one-shot semantics.
func TestCollectorSamplingAndDrain(t *testing.T) {
	tc := NewTraceCollector(10, 4)
	hits := 0
	for i := 0; i < 100; i++ {
		if tc.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Errorf("sampled %d of 100 at every=10, want 10", hits)
	}

	for i := 0; i < 6; i++ {
		tr := tc.New("w")
		tr.StartSpan("request", 0)
		tr.Finish()
		tr.Finish() // idempotent: must not double-insert
	}
	if got := tc.Len(); got != 4 {
		t.Errorf("ring holds %d traces, cap 4", got)
	}
	if got := tc.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	first := tc.Drain()
	if len(first) != 4 {
		t.Errorf("drain returned %d traces, want 4", len(first))
	}
	if second := tc.Drain(); len(second) != 0 {
		t.Errorf("second drain returned %d traces, want 0 (one-shot)", len(second))
	}
	// IDs are process-unique and the ring keeps the newest.
	if first[0].ID >= first[len(first)-1].ID {
		t.Errorf("ring order not oldest-first: %d .. %d", first[0].ID, first[len(first)-1].ID)
	}
}

// TestEverySamplingAlwaysHits pins every=1 (and the <1 clamp) to
// "trace everything" — the loadtest and test configuration.
func TestEverySamplingAlwaysHits(t *testing.T) {
	for _, every := range []int{0, 1} {
		tc := NewTraceCollector(every, 2)
		for i := 0; i < 5; i++ {
			if !tc.Sample() {
				t.Fatalf("every=%d draw %d not sampled", every, i)
			}
		}
	}
}

// TestTraceContext checks propagation and the decided-once contract
// that stops the engine from re-sampling behind the HTTP layer.
func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil || TraceDecided(ctx) {
		t.Fatal("fresh context must carry no decision")
	}
	tc := NewTraceCollector(1, 1)
	tr := tc.New("w")
	with := ContextWithTrace(ctx, tr)
	if TraceFrom(with) != tr || !TraceDecided(with) {
		t.Fatal("trace not propagated")
	}
	// A stored nil trace means "decided: not sampled".
	declined := ContextWithTrace(ctx, nil)
	if TraceFrom(declined) != nil {
		t.Fatal("declined context must yield nil trace")
	}
	if !TraceDecided(declined) {
		t.Fatal("declined context must still count as decided")
	}
}

// TestWriteChromeTraces validates the export shape: valid JSON, one
// pid per trace, metadata naming every lane, and complete events with
// non-negative relative timestamps.
func TestWriteChromeTraces(t *testing.T) {
	tc := NewTraceCollector(1, 8)
	now := time.Now()
	var traces []*Trace
	for i := 0; i < 2; i++ {
		tr := tc.New("memnet")
		root := tr.StartSpanAt("request", 0, now.Add(time.Duration(i)*time.Millisecond))
		tr.AddSpan("MatMul", root, 1, now.Add(time.Duration(i+1)*time.Millisecond), time.Millisecond)
		tr.EndSpanAt(root, now.Add(time.Duration(i+3)*time.Millisecond))
		tr.Finish()
		traces = append(traces, tr)
	}
	var b strings.Builder
	if err := WriteChromeTraces(&b, traces); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	var completes, metas int
	for _, ev := range doc.TraceEvents {
		pid := ev["pid"].(float64)
		pids[pid] = true
		switch ev["ph"] {
		case "X":
			completes++
			if ts := ev["ts"].(float64); ts < 0 {
				t.Errorf("negative relative timestamp %v", ts)
			}
		case "M":
			metas++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if len(pids) != 2 {
		t.Errorf("%d pids, want one per trace (2)", len(pids))
	}
	if completes != 4 {
		t.Errorf("%d complete events, want 4 (2 spans x 2 traces)", completes)
	}
	if metas < 2+4 { // process_name per trace + thread_name per used lane
		t.Errorf("%d metadata events, want >= 6", metas)
	}
}

// TestPhaseRing checks the fixed-size ring keeps the newest samples in
// order and Total counts everything ever recorded.
func TestPhaseRing(t *testing.T) {
	r := NewPhaseRing(4)
	for i := 1; i <= 6; i++ {
		r.Record(PhaseSample{Step: i, Wall: time.Duration(i) * time.Millisecond})
	}
	if r.Total() != 6 {
		t.Errorf("total = %d, want 6", r.Total())
	}
	got := r.Samples()
	if len(got) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(got))
	}
	for i, s := range got {
		if s.Step != i+3 {
			t.Errorf("sample %d is step %d, want %d (oldest-first, newest kept)", i, s.Step, i+3)
		}
	}
	var b strings.Builder
	WritePhaseTable(&b, got)
	out := b.String()
	for _, col := range []string{"step", "sample", "grad", "reduce", "apply", "wall", "mean"} {
		if !strings.Contains(out, col) {
			t.Errorf("phase table missing %q:\n%s", col, out)
		}
	}
}
