package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// PhaseSample is one training step's wall-time decomposition. Sample
// covers input synthesis (TrainSample), Grad the fused forward+backward
// graph execution — the runtime evaluates loss and gradients in a
// single Run, so forward and backward are not separable phases here —
// Reduce the cross-replica gradient all-reduce, and Apply the
// parameter update. Wall is the whole step including coordination.
type PhaseSample struct {
	Step   int
	Sample time.Duration
	Grad   time.Duration
	Reduce time.Duration
	Apply  time.Duration
	Wall   time.Duration
}

// PhaseRing keeps the most recent training steps' phase breakdowns in
// a fixed-size ring. Recording happens once per training step (not per
// op), so a mutex is cheap; readers get a copy in step order.
type PhaseRing struct {
	mu    sync.Mutex
	buf   []PhaseSample
	head  int
	total int
}

// NewPhaseRing returns a ring retaining the last n steps (minimum 1).
func NewPhaseRing(n int) *PhaseRing {
	if n < 1 {
		n = 1
	}
	return &PhaseRing{buf: make([]PhaseSample, 0, n)}
}

// Record appends one step's breakdown, evicting the oldest when full.
func (r *PhaseRing) Record(s PhaseSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.head] = s
		r.head = (r.head + 1) % cap(r.buf)
	}
	r.total++
}

// Total reports how many steps have ever been recorded.
func (r *PhaseRing) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Samples returns the retained steps, oldest first.
func (r *PhaseRing) Samples() []PhaseSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PhaseSample, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// WritePhaseTable renders retained steps as an aligned text table plus
// per-phase means — the `fathom train -trace` output.
func WritePhaseTable(w io.Writer, samples []PhaseSample) {
	if len(samples) == 0 {
		fmt.Fprintln(w, "  (no phase samples recorded)")
		return
	}
	fmt.Fprintf(w, "  %6s %12s %12s %12s %12s %12s\n",
		"step", "sample", "grad", "reduce", "apply", "wall")
	var sum PhaseSample
	for _, s := range samples {
		fmt.Fprintf(w, "  %6d %12s %12s %12s %12s %12s\n",
			s.Step, fmtDur(s.Sample), fmtDur(s.Grad), fmtDur(s.Reduce), fmtDur(s.Apply), fmtDur(s.Wall))
		sum.Sample += s.Sample
		sum.Grad += s.Grad
		sum.Reduce += s.Reduce
		sum.Apply += s.Apply
		sum.Wall += s.Wall
	}
	n := time.Duration(len(samples))
	fmt.Fprintf(w, "  %6s %12s %12s %12s %12s %12s\n",
		"mean", fmtDur(sum.Sample/n), fmtDur(sum.Grad/n), fmtDur(sum.Reduce/n), fmtDur(sum.Apply/n), fmtDur(sum.Wall/n))
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
