// The metrics tests pin the exposition contract: what the registry
// writes must be parseable Prometheus 0.0.4 text, every registered
// family must appear exactly once with its header, counters must read
// monotonic across scrapes, and histogram bucket lines must be
// cumulative with +Inf equal to _count.
package telemetry

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels string // raw {...} including braces, "" when unlabeled
	value  float64
}

// parsePrometheus is a deliberately strict parser for the exposition
// subset the registry emits. It fails the test on any line that is not
// a valid comment, header, or sample — a format-validity check and a
// value extractor in one.
func parsePrometheus(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	help := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if help[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			help[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, fields[1])
			}
			if _, dup := types[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s (family split across the output)", ln+1, fields[0])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		// Sample: name[{labels}] value
		rest := line
		var name, labels string
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced labels: %q", ln+1, line)
			}
			labels = rest[i : j+1]
			rest = strings.TrimSpace(rest[j+1:])
		} else {
			var ok bool
			name, rest, ok = strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: no value: %q", ln+1, line)
			}
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: v})
	}
	return samples, types
}

// find returns the single sample with the given name and label
// substring, failing the test when absent.
func find(t *testing.T, samples []promSample, name, labelSub string) promSample {
	t.Helper()
	for _, s := range samples {
		if s.name == name && strings.Contains(s.labels, labelSub) {
			return s
		}
	}
	t.Fatalf("no sample %s with labels containing %q", name, labelSub)
	return promSample{}
}

func scrape(r *Registry) string {
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		panic(err)
	}
	return b.String()
}

// TestPrometheusRoundtrip registers one series of every kind, scrapes,
// and re-parses: the output must be valid text format with every
// family present under the right type, labels sorted, and values
// matching what was recorded.
func TestPrometheusRoundtrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests", Labels{"model": "memnet", "a": "b"})
	c.Add(7)
	g := r.Gauge("test_depth", "queue depth", nil)
	g.Set(-3)
	r.CounterFunc("test_func_total", "func counter", Labels{"x": "y"}, func() uint64 { return 42 })
	r.GaugeFunc("test_ratio", "func gauge", nil, func() float64 { return 0.5 })
	h := &LogHistogram{}
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	r.Histogram("test_latency_seconds", "latency", Labels{"lane": "interactive"}, h)

	samples, types := parsePrometheus(t, scrape(r))

	for name, want := range map[string]string{
		"test_requests_total":  "counter",
		"test_depth":           "gauge",
		"test_func_total":      "counter",
		"test_ratio":           "gauge",
		"test_latency_seconds": "histogram",
	} {
		if got := types[name]; got != want {
			t.Errorf("TYPE %s = %q, want %q", name, got, want)
		}
	}
	// Labels render in sorted key order.
	cs := find(t, samples, "test_requests_total", `model="memnet"`)
	if cs.labels != `{a="b",model="memnet"}` {
		t.Errorf("labels not sorted: %q", cs.labels)
	}
	if cs.value != 7 {
		t.Errorf("counter = %v, want 7", cs.value)
	}
	if v := find(t, samples, "test_depth", "").value; v != -3 {
		t.Errorf("gauge = %v, want -3", v)
	}
	if v := find(t, samples, "test_func_total", `x="y"`).value; v != 42 {
		t.Errorf("counter func = %v, want 42", v)
	}
	if v := find(t, samples, "test_ratio", "").value; v != 0.5 {
		t.Errorf("gauge func = %v, want 0.5", v)
	}
	if v := find(t, samples, "test_latency_seconds_count", `lane="interactive"`).value; v != 3 {
		t.Errorf("hist count = %v, want 3", v)
	}
}

// TestHistogramCumulative checks the histogram exposition invariants:
// bucket values are non-decreasing in le order, the +Inf bucket equals
// _count, and _sum matches the observed total.
func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := &LogHistogram{}
	for _, d := range []time.Duration{
		10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond,
	} {
		h.Observe(d)
	}
	r.Histogram("cum_seconds", "", nil, h)
	samples, _ := parsePrometheus(t, scrape(r))

	var prev float64
	var infVal, count, sum float64
	buckets := 0
	for _, s := range samples {
		switch s.name {
		case "cum_seconds_bucket":
			if s.value < prev {
				t.Fatalf("bucket %s value %v < previous %v: not cumulative", s.labels, s.value, prev)
			}
			prev = s.value
			buckets++
			if strings.Contains(s.labels, "+Inf") {
				infVal = s.value
			}
		case "cum_seconds_count":
			count = s.value
		case "cum_seconds_sum":
			sum = s.value
		}
	}
	if buckets != LogBuckets+1 {
		t.Errorf("emitted %d bucket lines, want %d", buckets, LogBuckets+1)
	}
	if infVal != 5 || count != 5 {
		t.Errorf("+Inf bucket %v and _count %v must both be 5", infVal, count)
	}
	wantSum := (10*time.Microsecond + 100*time.Microsecond + time.Millisecond + 20*time.Millisecond).Seconds()
	if diff := sum - wantSum; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("_sum = %v, want %v", sum, wantSum)
	}
}

// TestCountersMonotonicAcrossScrapes is the golden trajectory check:
// scraping twice with traffic in between must never show a counter
// going backwards.
func TestCountersMonotonicAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "", nil)
	var fn uint64
	r.CounterFunc("mono_func_total", "", nil, func() uint64 { return fn })

	c.Add(3)
	fn = 10
	first, _ := parsePrometheus(t, scrape(r))
	c.Add(5)
	fn = 25
	second, _ := parsePrometheus(t, scrape(r))

	for _, name := range []string{"mono_total", "mono_func_total"} {
		a := find(t, first, name, "").value
		b := find(t, second, name, "").value
		if b < a {
			t.Errorf("%s went backwards: %v then %v", name, a, b)
		}
	}
	if v := find(t, second, "mono_total", "").value; v != 8 {
		t.Errorf("mono_total = %v, want 8", v)
	}
}

// TestRegistryReplaceAndUnregister pins the idempotent-registration
// contract: same name+labels replaces (rebuilt engines don't stack
// stale series), different labels coexist, and Unregister removes
// exactly one series.
func TestRegistryReplaceAndUnregister(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("re_total", "", Labels{"m": "a"}, func() uint64 { return 1 })
	r.CounterFunc("re_total", "", Labels{"m": "b"}, func() uint64 { return 2 })
	r.CounterFunc("re_total", "", Labels{"m": "a"}, func() uint64 { return 11 })

	samples, _ := parsePrometheus(t, scrape(r))
	var n int
	for _, s := range samples {
		if s.name == "re_total" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("%d re_total series after replacement, want 2", n)
	}
	if v := find(t, samples, "re_total", `m="a"`).value; v != 11 {
		t.Errorf("replaced series reads %v, want 11", v)
	}

	r.Unregister("re_total", Labels{"m": "a"})
	samples, _ = parsePrometheus(t, scrape(r))
	for _, s := range samples {
		if s.name == "re_total" && strings.Contains(s.labels, `m="a"`) {
			t.Fatalf("unregistered series still scraped: %v", s)
		}
	}
	find(t, samples, "re_total", `m="b"`) // the sibling survives
}

// TestServeHTTPContentType checks the /metrics handler speaks the
// exposition content type.
func TestServeHTTPContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("ct_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want 0.0.4 exposition", got)
	}
	if !strings.Contains(rec.Body.String(), "ct_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestQuantileOf pins the bucket-upper-bound quantile convention both
// histogram consumers (serve stats, loadgen wait deltas) rely on.
func TestQuantileOf(t *testing.T) {
	var b [LogBuckets]uint64
	if got := QuantileOf(&b, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	h := &LogHistogram{}
	for i := 0; i < 99; i++ {
		h.Observe(50 * time.Microsecond) // bucket [32,64)us -> upper 64us
	}
	h.Observe(80 * time.Millisecond)
	if got := h.Quantile(0.50); got != 64*time.Microsecond {
		t.Errorf("p50 = %v, want 64µs", got)
	}
	if got := h.Quantile(0.999); got <= 64*time.Microsecond {
		t.Errorf("p999 = %v, want the outlier's bucket", got)
	}
}
