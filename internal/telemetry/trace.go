package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one trace. Zero means "no span" and
// is only valid as a root span's parent.
type SpanID uint32

// Span is one timed region of a traced request: admission, queue wait,
// batch execution, Session.Run, or a single op lifted from the
// runtime's Event stream. Lane is the Chrome-trace thread the span
// renders on — 0 for request-level spans, 1+worker for op spans, so a
// traced request shows its inter-op parallelism.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	Dur    time.Duration
	Lane   int
}

// Trace is one sampled request's span tree. All mutation is
// mutex-guarded: a trace is touched by at most two goroutines (the
// admitting handler and the batch worker), never on the untraced hot
// path, and only 1-in-N requests carry one at all.
type Trace struct {
	ID    uint64
	Name  string
	Start time.Time

	mu       sync.Mutex
	spans    []Span
	nextSpan SpanID
	tc       *TraceCollector
	finished bool
}

// StartSpan opens a span under parent (0 for a root) starting now and
// returns its ID.
func (t *Trace) StartSpan(name string, parent SpanID) SpanID {
	return t.StartSpanAt(name, parent, time.Now())
}

// StartSpanAt opens a span with an explicit start time (queue spans
// start at enqueue, which happened before the worker saw the request).
func (t *Trace) StartSpanAt(name string, parent SpanID, at time.Time) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSpan++
	id := t.nextSpan
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: at})
	return id
}

// EndSpan closes an open span now. Closing an unknown or already
// closed span is a no-op.
func (t *Trace) EndSpan(id SpanID) { t.EndSpanAt(id, time.Now()) }

// EndSpanAt closes an open span at an explicit time.
func (t *Trace) EndSpanAt(id SpanID, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].ID == id && t.spans[i].Dur == 0 {
			t.spans[i].Dur = at.Sub(t.spans[i].Start)
			return
		}
	}
}

// AddSpan records an already-completed span (per-op events are
// measured by the runtime and attached after the fact).
func (t *Trace) AddSpan(name string, parent SpanID, lane int, start time.Time, dur time.Duration) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSpan++
	id := t.nextSpan
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: start, Dur: dur, Lane: lane})
	return id
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Finish hands the trace to its collector's ring. Idempotent; every
// request exit path (completion, shed, expiry, cancellation) calls it.
func (t *Trace) Finish() {
	t.mu.Lock()
	done := t.finished
	t.finished = true
	t.mu.Unlock()
	if done || t.tc == nil {
		return
	}
	t.tc.keep(t)
}

// TraceCollector decides sampling at admission and keeps the most
// recent finished traces in a bounded ring. The sampling decision is
// one atomic increment; unsampled requests never allocate.
type TraceCollector struct {
	every   uint64
	n       atomic.Uint64
	nextID  atomic.Uint64
	mu      sync.Mutex
	buf     []*Trace
	cap     int
	dropped uint64
}

// NewTraceCollector samples one request in every (minimum 1, i.e.
// every request) and retains up to buffer finished traces, dropping
// the oldest beyond that.
func NewTraceCollector(every, buffer int) *TraceCollector {
	if every < 1 {
		every = 1
	}
	if buffer < 1 {
		buffer = 1
	}
	return &TraceCollector{every: uint64(every), cap: buffer}
}

// Sample returns true for one admission in every N.
func (tc *TraceCollector) Sample() bool {
	return tc.n.Add(1)%tc.every == 1 || tc.every == 1
}

// New mints a trace with a fresh process-unique ID.
func (tc *TraceCollector) New(name string) *Trace {
	return &Trace{
		ID: tc.nextID.Add(1), Name: name, Start: time.Now(), tc: tc,
		// A served request produces ~50 spans (request/admission/queue/
		// batch/run plus one per op); starting at that capacity keeps a
		// traced request to one spans allocation instead of log2(n)
		// grow-and-discard cycles, which is most of its GC footprint.
		spans: make([]Span, 0, 64),
	}
}

func (tc *TraceCollector) keep(t *Trace) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if len(tc.buf) >= tc.cap {
		tc.buf = append(tc.buf[1:], t)
		tc.dropped++
		return
	}
	tc.buf = append(tc.buf, t)
}

// Drain returns every retained finished trace and empties the ring —
// one-shot semantics for the /debug/trace endpoint and the -trace-dir
// writer.
func (tc *TraceCollector) Drain() []*Trace {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := tc.buf
	tc.buf = nil
	return out
}

// Len reports the number of retained finished traces.
func (tc *TraceCollector) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.buf)
}

// Dropped reports traces evicted from the ring before being drained.
func (tc *TraceCollector) Dropped() uint64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.dropped
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace to a request context for
// propagation from HTTP admission through the engine.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// TraceDecided reports whether an outer layer already made this
// request's sampling decision (ContextWithTrace was called, possibly
// with a nil trace for "not sampled"). The engine only draws its own
// sample for requests that bypassed the HTTP layer, so wiring one
// collector into both layers never doubles the sampling rate.
func TraceDecided(ctx context.Context) bool {
	_, ok := ctx.Value(traceCtxKey{}).(*Trace)
	return ok
}

// Chrome trace-event JSON, mirroring the runtime's export format so
// request span trees open in the same viewers (chrome://tracing,
// Perfetto) as op timelines.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTraces renders finished traces as one Chrome-trace JSON
// document: one process per trace, request-level spans on lane 0 and
// per-op spans on one lane per inter-op worker. Timestamps are
// microseconds relative to the earliest span across all traces.
func WriteChromeTraces(w io.Writer, traces []*Trace) error {
	var t0 time.Time
	type flat struct {
		pid   int
		spans []Span
	}
	var all []flat
	for i, t := range traces {
		spans := t.Spans()
		for _, s := range spans {
			if t0.IsZero() || s.Start.Before(t0) {
				t0 = s.Start
			}
		}
		all = append(all, flat{pid: i + 1, spans: spans})
	}
	var events []any
	for i, t := range traces {
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", PID: all[i].pid, TID: 0,
			Args: map[string]string{"name": fmt.Sprintf("%s trace=%d", t.Name, t.ID)},
		})
		lanes := map[int]bool{}
		for _, s := range all[i].spans {
			if !lanes[s.Lane] {
				lanes[s.Lane] = true
				name := "request"
				if s.Lane > 0 {
					name = fmt.Sprintf("worker %d", s.Lane-1)
				}
				events = append(events, chromeMeta{
					Name: "thread_name", Ph: "M", PID: all[i].pid, TID: s.Lane,
					Args: map[string]string{"name": name},
				})
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Ph:   "X",
				TS:   float64(s.Start.Sub(t0)) / float64(time.Microsecond),
				Dur:  float64(s.Dur) / float64(time.Microsecond),
				PID:  all[i].pid,
				TID:  s.Lane,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
