// Package telemetry is the suite's unified observability spine: a
// process-wide, lock-cheap metrics registry with Prometheus
// text-format exposition, request-scoped trace collection with
// Chrome-trace export, and the fixed-size phase ring training loops
// record their per-step breakdown into.
//
// The paper's Related Work holds up EEG — Google's never-released
// tool that "can reconstruct the dynamic execution timeline of
// TensorFlow operations" — as the missing observability layer for DL
// systems. The runtime's per-op Event records are the op-level half of
// that; this package joins them up with the serving and training
// layers so every microsecond of a request or a training step is
// attributable to a phase, an op, and a pool lane.
//
// # Staying off the hot path
//
// Nothing here synchronizes on the serving or training fast path.
// Counters and gauges are single atomics; subsystems that already keep
// atomic counter blocks (serve's stats, sched's pool gauges, the
// tensor arena) register scrape-time reader functions instead of
// double-counting, so enabling /metrics does not add a single
// instruction to request execution. Trace sampling is decided once at
// admission (an atomic increment), and per-op span capture reuses the
// runtime's existing Event collection. The CI overhead gate holds the
// whole subsystem under 2% on BenchmarkServe*.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LogBuckets is the log-bucketed histogram resolution, generalized out
// of the serving engine's latency stats: bucket k holds durations in
// [2^k, 2^(k+1)) microseconds, so 40 buckets cover sub-microsecond to
// ~12 days.
const LogBuckets = 40

// BucketOf maps a microsecond duration to its histogram bucket.
func BucketOf(us uint64) int {
	k := 0
	for v := us; v > 1 && k < LogBuckets-1; v >>= 1 {
		k++
	}
	return k
}

// BucketUpper returns the exclusive upper bound of bucket k in
// microseconds: 2^(k+1).
func BucketUpper(k int) uint64 { return uint64(1) << uint(k+1) }

// QuantileOf returns the upper bound of the bucket containing the
// q-quantile entry of a bucket-count snapshot (a LogHistogram snapshot
// or a delta of two). Zero when the snapshot is empty.
func QuantileOf(buckets *[LogBuckets]uint64, q float64) time.Duration {
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen uint64
	for i, c := range buckets {
		seen += c
		if seen > want {
			return time.Duration(BucketUpper(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<LogBuckets) * time.Microsecond
}

// LogHistogram is a lock-free power-of-two latency histogram: 40
// atomic buckets plus a running sum, cheap enough to Observe on the
// serving hot path (one atomic add per field). The zero value is ready
// to use, so it embeds directly into atomic stats blocks.
type LogHistogram struct {
	buckets [LogBuckets]atomic.Uint64
	sumUS   atomic.Uint64
	count   atomic.Uint64
}

// Observe records one duration.
func (h *LogHistogram) Observe(d time.Duration) {
	us := uint64(d.Microseconds())
	h.buckets[BucketOf(us)].Add(1)
	h.sumUS.Add(us)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the summed observed duration.
func (h *LogHistogram) Sum() time.Duration {
	return time.Duration(h.sumUS.Load()) * time.Microsecond
}

// Quantile returns the upper bound of the bucket containing the
// q-quantile observation.
func (h *LogHistogram) Quantile(q float64) time.Duration {
	var snap [LogBuckets]uint64
	h.Buckets(&snap)
	return QuantileOf(&snap, q)
}

// Buckets copies the current bucket counts into out.
func (h *LogHistogram) Buckets(out *[LogBuckets]uint64) {
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
}

// Reset zeroes the histogram.
func (h *LogHistogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sumUS.Store(0)
	h.count.Store(0)
}

// Counter is an owned monotonic counter (one atomic).
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an owned instantaneous value (one atomic).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Labels is a metric's label set, rendered in sorted key order.
type Labels map[string]string

// series is one registered time series: a name plus label set and a
// way to render its sample lines at scrape time.
type series struct {
	name   string
	help   string
	typ    string // counter | gauge | histogram
	labels string // pre-rendered {k="v",...} or ""
	// Exactly one of these is set.
	counter     *Counter
	gauge       *Gauge
	counterFunc func() uint64
	gaugeFunc   func() float64
	hist        *LogHistogram
}

// Registry is a process-wide metric registry. Registration is
// mutex-guarded (it happens at subsystem construction, never on a hot
// path); scraping walks the registered series and reads their atomics.
// Registering a series with the same name and label set as an existing
// one replaces it — re-registration is idempotent, so short-lived
// subsystems (tests, rebuilt engines) never poison the registry.
type Registry struct {
	mu     sync.Mutex
	series []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// defaultRegistry is the process-wide registry Default returns.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, old := range r.series {
		if old.name == s.name && old.labels == s.labels {
			r.series[i] = s
			return
		}
	}
	r.series = append(r.series, s)
}

// Unregister removes the series with the given name and label set (a
// no-op when absent). Subsystems with bounded lifetimes (trainers,
// engines in tests) call it from Close so the registry never scrapes
// freed state.
func (r *Registry) Unregister(name string, labels Labels) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.series {
		if s.name == name && s.labels == ls {
			r.series = append(r.series[:i], r.series[i+1:]...)
			return
		}
	}
}

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(&series{name: name, help: help, typ: "counter", labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(&series{name: name, help: help, typ: "gauge", labels: renderLabels(labels), gauge: g})
	return g
}

// CounterFunc registers a scrape-time counter reading fn — the
// zero-overhead bridge for subsystems that already keep atomic
// counters (serve's stats block). fn must be monotonic between resets
// and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.add(&series{name: name, help: help, typ: "counter", labels: renderLabels(labels), counterFunc: fn})
}

// GaugeFunc registers a scrape-time gauge reading fn (pool occupancy,
// queue depth, arena bytes). fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(&series{name: name, help: help, typ: "gauge", labels: renderLabels(labels), gaugeFunc: fn})
}

// Histogram registers an existing LogHistogram for exposition. The
// histogram keeps being observed wherever it lives (serve's latency
// stats); the registry only reads it at scrape time.
func (r *Registry) Histogram(name, help string, labels Labels, h *LogHistogram) {
	r.add(&series{name: name, help: help, typ: "histogram", labels: renderLabels(labels), hist: h})
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): series sharing a name form
// one family with a single HELP/TYPE header; histograms emit
// cumulative le buckets in seconds plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	snap := append([]*series(nil), r.series...)
	r.mu.Unlock()

	written := map[string]bool{}
	for _, s := range snap {
		if !written[s.name] {
			written[s.name] = true
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.typ); err != nil {
				return err
			}
			// Emit the rest of the family right behind its header.
			for _, t := range snap {
				if t.name != s.name {
					continue
				}
				if err := writeSeries(w, t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, s *series) error {
	switch {
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.counter.Value())
		return err
	case s.counterFunc != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.counterFunc())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.gauge.Value())
		return err
	case s.gaugeFunc != nil:
		_, err := fmt.Fprintf(w, "%s%s %g\n", s.name, s.labels, s.gaugeFunc())
		return err
	case s.hist != nil:
		return writeHistogram(w, s)
	}
	return nil
}

// histLabel splices an extra label pair into a pre-rendered label set.
func histLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func writeHistogram(w io.Writer, s *series) error {
	var buckets [LogBuckets]uint64
	s.hist.Buckets(&buckets)
	var cum uint64
	for i, c := range buckets {
		cum += c
		le := float64(BucketUpper(i)) / 1e6 // seconds
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, histLabel(s.labels, fmt.Sprintf("le=%q", formatFloat(le))), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, histLabel(s.labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.name, s.labels, s.hist.Sum().Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, s.hist.Count())
	return err
}

// formatFloat renders a bucket bound compactly ("0.000128", "8.192").
func formatFloat(f float64) string {
	out := fmt.Sprintf("%.9f", f)
	out = strings.TrimRight(out, "0")
	out = strings.TrimRight(out, ".")
	if out == "" {
		out = "0"
	}
	return out
}

// ServeHTTP exposes the registry as a /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
