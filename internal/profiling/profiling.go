// Package profiling aggregates operation traces into the profiles the
// paper analyzes: time by operation type, time by operation class
// (Figure 3's groups A–G), cumulative heavy-operation curves
// (Figure 2), per-step stationarity statistics (Figure 1), and the
// vector-space representation used for workload similarity (Figure 4).
package profiling

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// Profile is the aggregate of one traced run of a workload.
type Profile struct {
	Model string
	Mode  string // "training" or "inference"
	Steps int

	ByType  map[string]time.Duration
	ByClass [graph.NumClasses]time.Duration
	// ClassOfType remembers the class of each op type seen.
	ClassOfType map[string]graph.OpClass
	Total       time.Duration
}

// Collect aggregates events into a profile.
func Collect(model, mode string, steps int, events []runtime.Event) *Profile {
	p := &Profile{
		Model:       model,
		Mode:        mode,
		Steps:       steps,
		ByType:      map[string]time.Duration{},
		ClassOfType: map[string]graph.OpClass{},
	}
	for _, e := range events {
		p.ByType[e.Op] += e.Dur
		p.ByClass[e.Class] += e.Dur
		p.ClassOfType[e.Op] = e.Class
		p.Total += e.Dur
	}
	return p
}

// TypeShare holds one op type's share of total execution time.
type TypeShare struct {
	Op       string
	Class    graph.OpClass
	Time     time.Duration
	Fraction float64
}

// Shares returns op types sorted by descending time share.
func (p *Profile) Shares() []TypeShare {
	out := make([]TypeShare, 0, len(p.ByType))
	for op, d := range p.ByType {
		fr := 0.0
		if p.Total > 0 {
			fr = float64(d) / float64(p.Total)
		}
		out = append(out, TypeShare{Op: op, Class: p.ClassOfType[op], Time: d, Fraction: fr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// ClassFractions returns the share of each operation class (rows of
// the paper's Figure 3 heat map).
func (p *Profile) ClassFractions() [graph.NumClasses]float64 {
	var out [graph.NumClasses]float64
	if p.Total == 0 {
		return out
	}
	for c, d := range p.ByClass {
		out[c] = float64(d) / float64(p.Total)
	}
	return out
}

// CumPoint is one point of the Figure-2 cumulative curve.
type CumPoint struct {
	Rank       int // 1-based rank of the op type by time
	Op         string
	Cumulative float64 // cumulative fraction of total time
}

// Cumulative returns the sorted cumulative-share curve of Figure 2.
func (p *Profile) Cumulative() []CumPoint {
	shares := p.Shares()
	out := make([]CumPoint, len(shares))
	acc := 0.0
	for i, s := range shares {
		acc += s.Fraction
		out[i] = CumPoint{Rank: i + 1, Op: s.Op, Cumulative: acc}
	}
	return out
}

// HeavyTypes returns how many op types are needed to cover the given
// fraction of execution time (the paper reports 5–15 types for 90%).
func (p *Profile) HeavyTypes(frac float64) int {
	for _, pt := range p.Cumulative() {
		if pt.Cumulative >= frac {
			return pt.Rank
		}
	}
	return len(p.ByType)
}

// PerStepTimes groups events of one op type by step, summing durations
// within each step: the sampling distribution behind Figure 1.
func PerStepTimes(events []runtime.Event, op string) []time.Duration {
	byStep := map[int]time.Duration{}
	maxStep := -1
	for _, e := range events {
		if e.Op != op {
			continue
		}
		byStep[e.Step] += e.Dur
		if e.Step > maxStep {
			maxStep = e.Step
		}
	}
	var out []time.Duration
	for s := 0; s <= maxStep; s++ {
		if d, ok := byStep[s]; ok {
			out = append(out, d)
		}
	}
	return out
}

// StepTotals sums all op durations per step (absent steps, e.g.
// warmup steps trimmed from the trace, are skipped).
func StepTotals(events []runtime.Event) []time.Duration {
	byStep := map[int]time.Duration{}
	maxStep := -1
	for _, e := range events {
		byStep[e.Step] += e.Dur
		if e.Step > maxStep {
			maxStep = e.Step
		}
	}
	var out []time.Duration
	for s := 0; s <= maxStep; s++ {
		if d, ok := byStep[s]; ok {
			out = append(out, d)
		}
	}
	return out
}

// Stationarity summarizes the distribution of per-step times.
type Stationarity struct {
	Samples  int
	Mean     time.Duration
	Std      time.Duration
	CoV      float64 // coefficient of variation (std/mean)
	Min, Max time.Duration
	// Drift is the relative difference between the mean of the first
	// and second halves of the series; near zero means stationary.
	Drift float64
}

// Stationary computes distribution statistics over per-step times.
func Stationary(series []time.Duration) Stationarity {
	st := Stationarity{Samples: len(series)}
	if len(series) == 0 {
		return st
	}
	var sum, sum2 float64
	st.Min, st.Max = series[0], series[0]
	for _, d := range series {
		v := float64(d)
		sum += v
		sum2 += v * v
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	n := float64(len(series))
	mean := sum / n
	varr := sum2/n - mean*mean
	if varr < 0 {
		varr = 0
	}
	st.Mean = time.Duration(mean)
	st.Std = time.Duration(sqrt(varr))
	if mean > 0 {
		st.CoV = float64(st.Std) / mean
	}
	half := len(series) / 2
	if half > 0 {
		var a, b float64
		for _, d := range series[:half] {
			a += float64(d)
		}
		for _, d := range series[half:] {
			b += float64(d)
		}
		a /= float64(half)
		b /= float64(len(series) - half)
		if a > 0 {
			st.Drift = (b - a) / a
		}
	}
	return st
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Histogram bins a duration series into n equal-width buckets.
func Histogram(series []time.Duration, n int) (edges []time.Duration, counts []int) {
	if len(series) == 0 || n < 1 {
		return nil, nil
	}
	lo, hi := series[0], series[0]
	for _, d := range series {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]time.Duration, n+1)
	counts = make([]int, n)
	w := (hi - lo) / time.Duration(n)
	if w == 0 {
		w = 1
	}
	for i := range edges {
		edges[i] = lo + time.Duration(i)*w
	}
	for _, d := range series {
		b := int((d - lo) / w)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return edges, counts
}

// Vectorize projects profiles into a common op-type vector space: the
// union of all op types, each coordinate the fraction of that
// profile's time. This is the representation clustered in Figure 4.
func Vectorize(profiles []*Profile) (types []string, vectors [][]float64) {
	seen := map[string]bool{}
	for _, p := range profiles {
		for op := range p.ByType {
			seen[op] = true
		}
	}
	types = make([]string, 0, len(seen))
	for op := range seen {
		types = append(types, op)
	}
	sort.Strings(types)
	vectors = make([][]float64, len(profiles))
	for i, p := range profiles {
		v := make([]float64, len(types))
		if p.Total > 0 {
			for j, op := range types {
				v[j] = float64(p.ByType[op]) / float64(p.Total)
			}
		}
		vectors[i] = v
	}
	return types, vectors
}

// ---- inter-op parallelism (characterization axis added with the
// parallel plan scheduler; see internal/runtime/sched.go) ----

// InterOpStats summarizes a trace's inter-op structure per workload:
// how much op time lies on the critical path, the speedup the traced
// schedule achieved, and the bound any schedule could achieve.
type InterOpStats struct {
	Steps int
	Ops   int
	// Serial is the summed device time of every op — the 1-worker
	// makespan.
	Serial time.Duration
	// Makespan is the simulated elapsed time of the traced schedule,
	// summed over steps.
	Makespan time.Duration
	// CritPath is the summed per-step critical path — the minimum
	// elapsed time any inter-op schedule could reach.
	CritPath time.Duration
	// Achieved is Serial/Makespan: the realized inter-op speedup.
	Achieved float64
	// Achievable is Serial/CritPath: the workload's inter-op speedup
	// bound, set by its dependency structure alone.
	Achievable float64
	// Workers is the number of distinct scheduler lanes observed.
	Workers int
	// Occupancy is each lane's busy fraction of the makespan, indexed
	// by worker id.
	Occupancy []float64
}

// InterOp aggregates trace events into inter-op statistics. Events
// are grouped by step (each Run's timeline is independent): per step
// the serial time is the op-duration sum, the makespan is the span
// from earliest start to latest finish, and the critical path is the
// maximum Event.CP; the totals sum the steps.
func InterOp(events []runtime.Event) InterOpStats {
	st := InterOpStats{}
	if len(events) == 0 {
		return st
	}
	type stepAgg struct {
		serial   time.Duration
		lo, hi   time.Duration
		crit     time.Duration
		hasSpan  bool
		busyByID map[int]time.Duration
	}
	steps := map[int]*stepAgg{}
	maxWorker := 0
	for _, e := range events {
		a := steps[e.Step]
		if a == nil {
			a = &stepAgg{busyByID: map[int]time.Duration{}}
			steps[e.Step] = a
		}
		st.Ops++
		a.serial += e.Dur
		if !a.hasSpan || e.Start < a.lo {
			a.lo = e.Start
		}
		if !a.hasSpan || e.Start+e.Dur > a.hi {
			a.hi = e.Start + e.Dur
		}
		a.hasSpan = true
		if e.CP > a.crit {
			a.crit = e.CP
		}
		a.busyByID[e.Worker] += e.Dur
		if e.Worker > maxWorker {
			maxWorker = e.Worker
		}
	}
	busy := make([]time.Duration, maxWorker+1)
	for _, a := range steps {
		st.Steps++
		st.Serial += a.serial
		st.Makespan += a.hi - a.lo
		st.CritPath += a.crit
		for w, d := range a.busyByID {
			busy[w] += d
		}
	}
	if st.Makespan > 0 {
		st.Achieved = float64(st.Serial) / float64(st.Makespan)
	}
	if st.CritPath > 0 {
		st.Achievable = float64(st.Serial) / float64(st.CritPath)
	}
	st.Occupancy = make([]float64, len(busy))
	for w, d := range busy {
		if d > 0 {
			st.Workers++
		}
		if st.Makespan > 0 {
			st.Occupancy[w] = float64(d) / float64(st.Makespan)
		}
	}
	return st
}

// ---- intra-op parallelism: real vs. modeled ----

// IntraOpStats puts the two intra-op execution strategies side by
// side for one workload: the modeled speedup of the serial+simulated
// kernel pools (the paper's Fig. 6 axis — measured chunk makespans
// list-scheduled over modeled lanes) and the measured wall speedup of
// the real parallel pools (WithIntraOpWorkers — chunks actually
// executing on shared-pool goroutines). On a host with enough free
// cores the two should roughly agree; the gap between them is the
// model's optimism about memory bandwidth and scheduling overhead.
type IntraOpStats struct {
	Workers int
	// SerialSim and ModeledSim are simulated op time per run at width
	// 1 and Workers (serial strategy).
	SerialSim, ModeledSim time.Duration
	// SerialWall and ParallelWall are host wall time per run at width
	// 1 and Workers (parallel strategy).
	SerialWall, ParallelWall time.Duration
	// Modeled is SerialSim/ModeledSim; Measured is
	// SerialWall/ParallelWall.
	Modeled, Measured float64
}

// IntraOp assembles the side-by-side comparison from the four timing
// measurements.
func IntraOp(workers int, serialSim, modeledSim, serialWall, parallelWall time.Duration) IntraOpStats {
	st := IntraOpStats{
		Workers:   workers,
		SerialSim: serialSim, ModeledSim: modeledSim,
		SerialWall: serialWall, ParallelWall: parallelWall,
	}
	if modeledSim > 0 {
		st.Modeled = float64(serialSim) / float64(modeledSim)
	}
	if parallelWall > 0 {
		st.Measured = float64(serialWall) / float64(parallelWall)
	}
	return st
}

// ---- data-parallel training: achieved vs achievable scaling ----

// TrainScalingStats compares a data-parallel training run against its
// single-replica baseline for one workload. Achieved is the realized
// wall-clock speedup. Achievable is the Amdahl bound the run's own
// phase structure admits: the gradient phase parallelizes across
// replicas (its serial work is GradSum, its parallel wall the
// slowest replica, GradMax), while the all-reduce and the replicated
// apply phase are step-serial — so no schedule can beat
// (GradSum + Reduce + Apply) / (GradMax + Reduce + Apply). The gap
// between the two is scheduling overhead plus host-core scarcity, the
// same decomposition the inter-op profile reports.
type TrainScalingStats struct {
	Replicas int
	// SerialWall and ParallelWall are total step wall at 1 replica
	// and at Replicas.
	SerialWall, ParallelWall time.Duration
	// GradSum/GradMax/Reduce/Apply are the parallel run's phase walls
	// (see dist.Timing).
	GradSum, GradMax, Reduce, Apply time.Duration
	// Achieved is SerialWall/ParallelWall; Achievable the phase-
	// structure bound above.
	Achieved, Achievable float64
}

// TrainScaling assembles the comparison from the two runs' timings.
func TrainScaling(replicas int, serialWall, parallelWall, gradSum, gradMax, reduce, apply time.Duration) TrainScalingStats {
	st := TrainScalingStats{
		Replicas:   replicas,
		SerialWall: serialWall, ParallelWall: parallelWall,
		GradSum: gradSum, GradMax: gradMax, Reduce: reduce, Apply: apply,
	}
	if parallelWall > 0 {
		st.Achieved = float64(serialWall) / float64(parallelWall)
	}
	if denom := gradMax + reduce + apply; denom > 0 {
		st.Achievable = float64(gradSum+reduce+apply) / float64(denom)
	}
	return st
}

// String renders a compact textual profile.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, %d steps, total %v)\n", p.Model, p.Mode, p.Steps, p.Total)
	for _, s := range p.Shares() {
		if s.Fraction < 0.01 {
			continue
		}
		fmt.Fprintf(&b, "  %-24s %-24s %6.2f%%\n", s.Op, s.Class, 100*s.Fraction)
	}
	return b.String()
}
