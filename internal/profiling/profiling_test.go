package profiling

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/runtime"
)

func evts() []runtime.Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []runtime.Event{
		{Op: "MatMul", Class: graph.ClassMatrix, Dur: ms(60), Step: 0},
		{Op: "Add", Class: graph.ClassElementwise, Dur: ms(20), Step: 0},
		{Op: "Sum", Class: graph.ClassReduction, Dur: ms(20), Step: 0},
		{Op: "MatMul", Class: graph.ClassMatrix, Dur: ms(58), Step: 1},
		{Op: "Add", Class: graph.ClassElementwise, Dur: ms(22), Step: 1},
		{Op: "Sum", Class: graph.ClassReduction, Dur: ms(20), Step: 1},
	}
}

func TestCollectAggregates(t *testing.T) {
	p := Collect("toy", "training", 2, evts())
	if p.Total != 200*time.Millisecond {
		t.Fatalf("total = %v", p.Total)
	}
	if p.ByType["MatMul"] != 118*time.Millisecond {
		t.Fatalf("MatMul time = %v", p.ByType["MatMul"])
	}
	if p.ByClass[graph.ClassMatrix] != 118*time.Millisecond {
		t.Fatalf("class A time = %v", p.ByClass[graph.ClassMatrix])
	}
	if p.ClassOfType["Sum"] != graph.ClassReduction {
		t.Fatal("class map wrong")
	}
}

func TestSharesSortedDescending(t *testing.T) {
	p := Collect("toy", "training", 2, evts())
	sh := p.Shares()
	if sh[0].Op != "MatMul" {
		t.Fatalf("heaviest op should be MatMul, got %v", sh[0])
	}
	if sh[0].Fraction < 0.58 || sh[0].Fraction > 0.60 {
		t.Fatalf("MatMul share = %v", sh[0].Fraction)
	}
	for i := 1; i < len(sh); i++ {
		if sh[i].Time > sh[i-1].Time {
			t.Fatal("shares must be sorted descending")
		}
	}
}

func TestClassFractionsSumToOne(t *testing.T) {
	p := Collect("toy", "training", 2, evts())
	fr := p.ClassFractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("class fractions sum to %v", sum)
	}
}

func TestCumulativeCurveMonotone(t *testing.T) {
	p := Collect("toy", "training", 2, evts())
	cum := p.Cumulative()
	if len(cum) != 3 {
		t.Fatalf("3 op types expected, got %d", len(cum))
	}
	prev := 0.0
	for _, pt := range cum {
		if pt.Cumulative < prev {
			t.Fatal("cumulative must be monotone")
		}
		prev = pt.Cumulative
	}
	if prev < 0.999 || prev > 1.001 {
		t.Fatalf("cumulative should end at 1, got %v", prev)
	}
}

func TestHeavyTypes(t *testing.T) {
	p := Collect("toy", "training", 2, evts())
	if h := p.HeavyTypes(0.5); h != 1 {
		t.Fatalf("50%% coverage needs %d types, want 1", h)
	}
	if h := p.HeavyTypes(0.95); h != 3 {
		t.Fatalf("95%% coverage needs %d types, want 3", h)
	}
}

func TestPerStepTimesAndStationarity(t *testing.T) {
	series := PerStepTimes(evts(), "MatMul")
	if len(series) != 2 || series[0] != 60*time.Millisecond {
		t.Fatalf("per-step times = %v", series)
	}
	st := Stationary(series)
	if st.Samples != 2 || st.Mean != 59*time.Millisecond {
		t.Fatalf("stationarity = %+v", st)
	}
	if st.CoV > 0.05 {
		t.Fatalf("CoV should be tiny for near-constant series: %v", st.CoV)
	}
}

func TestStationaryEmpty(t *testing.T) {
	st := Stationary(nil)
	if st.Samples != 0 || st.Mean != 0 {
		t.Fatal("empty series should produce zero stats")
	}
}

func TestStationaryDrift(t *testing.T) {
	var s []time.Duration
	for i := 0; i < 10; i++ {
		s = append(s, 10*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s = append(s, 20*time.Millisecond)
	}
	st := Stationary(s)
	if st.Drift < 0.9 || st.Drift > 1.1 {
		t.Fatalf("drift = %v, want ≈1 for doubled second half", st.Drift)
	}
}

func TestStepTotals(t *testing.T) {
	tot := StepTotals(evts())
	if len(tot) != 2 || tot[0] != 100*time.Millisecond || tot[1] != 100*time.Millisecond {
		t.Fatalf("step totals = %v", tot)
	}
}

func TestHistogram(t *testing.T) {
	series := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	edges, counts := Histogram(series, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("histogram shape: %v %v", edges, counts)
	}
	if counts[0]+counts[1] != 10 {
		t.Fatalf("histogram must cover all samples: %v", counts)
	}
}

func TestVectorize(t *testing.T) {
	p1 := Collect("m1", "training", 1, []runtime.Event{
		{Op: "MatMul", Class: graph.ClassMatrix, Dur: time.Second},
	})
	p2 := Collect("m2", "training", 1, []runtime.Event{
		{Op: "Conv2D", Class: graph.ClassConv, Dur: time.Second},
	})
	types, vecs := Vectorize([]*Profile{p1, p2})
	if len(types) != 2 {
		t.Fatalf("union of types = %v", types)
	}
	// Orthogonal profiles: each vector has one 1 and one 0.
	for _, v := range vecs {
		var sum float64
		for _, x := range v {
			sum += x
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("vector should sum to 1: %v", v)
		}
	}
	if vecs[0][0]*vecs[1][0]+vecs[0][1]*vecs[1][1] != 0 {
		t.Fatal("disjoint profiles should be orthogonal")
	}
}

func TestProfileString(t *testing.T) {
	p := Collect("toy", "training", 2, evts())
	s := p.String()
	if len(s) == 0 || s[0] != 't' {
		t.Fatalf("profile string: %q", s)
	}
}

// TestInterOpSyntheticTrace pins the inter-op aggregation on a
// hand-built two-step trace: step 0 runs A and B concurrently on two
// lanes then C after both (serial 25, makespan 15, critical path 15);
// step 1 is one 5-unit op.
func TestInterOpSyntheticTrace(t *testing.T) {
	u := time.Microsecond
	events := []runtime.Event{
		{Op: "A", Step: 0, Worker: 0, Start: 0, Dur: 10 * u, CP: 10 * u},
		{Op: "B", Step: 0, Worker: 1, Start: 0, Dur: 10 * u, CP: 10 * u},
		{Op: "C", Step: 0, Worker: 0, Start: 10 * u, Dur: 5 * u, CP: 15 * u},
		{Op: "D", Step: 1, Worker: 0, Start: 15 * u, Dur: 5 * u, CP: 5 * u},
	}
	st := InterOp(events)
	if st.Steps != 2 || st.Ops != 4 {
		t.Fatalf("steps/ops = %d/%d, want 2/4", st.Steps, st.Ops)
	}
	if st.Serial != 30*u {
		t.Fatalf("serial = %v, want 30µs", st.Serial)
	}
	if st.Makespan != 20*u {
		t.Fatalf("makespan = %v, want 20µs", st.Makespan)
	}
	if st.CritPath != 20*u {
		t.Fatalf("critical path = %v, want 20µs", st.CritPath)
	}
	if st.Achieved != 1.5 || st.Achievable != 1.5 {
		t.Fatalf("achieved/achievable = %v/%v, want 1.5/1.5", st.Achieved, st.Achievable)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
	if len(st.Occupancy) != 2 || st.Occupancy[0] != 1.0 || st.Occupancy[1] != 0.5 {
		t.Fatalf("occupancy = %v, want [1.0 0.5]", st.Occupancy)
	}
}

// TestInterOpEmptyTrace: no events, no division by zero.
func TestInterOpEmptyTrace(t *testing.T) {
	st := InterOp(nil)
	if st.Steps != 0 || st.Achieved != 0 || st.Achievable != 0 {
		t.Fatalf("empty trace should be zero-valued: %+v", st)
	}
}

// TestInterOpSerialTraceIsFlat: a serial trace (contiguous events on
// worker 0) has makespan equal to serial time — achieved speedup 1.
func TestInterOpSerialTraceIsFlat(t *testing.T) {
	u := time.Microsecond
	events := []runtime.Event{
		{Op: "A", Step: 0, Worker: 0, Start: 0, Dur: 4 * u, CP: 4 * u},
		{Op: "B", Step: 0, Worker: 0, Start: 4 * u, Dur: 6 * u, CP: 10 * u},
	}
	st := InterOp(events)
	if st.Achieved != 1 {
		t.Fatalf("serial trace achieved = %v, want 1", st.Achieved)
	}
	if st.Workers != 1 {
		t.Fatalf("workers = %d, want 1", st.Workers)
	}
}
