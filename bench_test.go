// Package repro's benchmarks regenerate each of the paper's tables and
// figures (one benchmark per artifact, at the tiny preset so a full
// -bench=. sweep stays tractable) and measure per-step cost of every
// workload in both modes. The EXPERIMENTS.md numbers come from the
// fathom CLI at the reference preset; these benches are the CI-sized
// equivalents.
package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/fuse"
	"repro/internal/profiling"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/tensor"

	_ "repro/internal/models/all"
)

func benchOpts() experiments.Options {
	return experiments.Options{Preset: core.PresetTiny, Steps: 2, Warmup: 1, Seed: 1}
}

// ---- one benchmark per table/figure ----

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); r.Text == "" {
			b.Fatal("empty table1")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table2(); r.Text == "" {
			b.Fatal("empty table2")
		}
	}
}

func BenchmarkFig1_Stationarity(b *testing.B) {
	o := benchOpts()
	o.Steps = 16
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_CumulativeOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_ClassHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_SimilarityDendrogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_TrainVsInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_deepq(b *testing.B)   { benchFig6(b, "deepq") }
func BenchmarkFig6_seq2seq(b *testing.B) { benchFig6(b, "seq2seq") }
func BenchmarkFig6_memnet(b *testing.B)  { benchFig6(b, "memnet") }

func benchFig6(b *testing.B, model string) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchOpts(), model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Overhead(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- per-workload step benchmarks (small preset) ----

func benchStep(b *testing.B, name string, mode core.Mode) {
	m, err := core.New(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetSmall, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(), runtime.WithSeed(1))
	if err := core.Step(m, s, mode); err != nil { // warm the plan cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Step(m, s, mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepTraining(b *testing.B) {
	for _, name := range experiments.Workloads() {
		b.Run(name, func(b *testing.B) { benchStep(b, name, core.ModeTraining) })
	}
}

func BenchmarkStepInference(b *testing.B) {
	for _, name := range experiments.Workloads() {
		b.Run(name, func(b *testing.B) { benchStep(b, name, core.ModeInference) })
	}
}

// ---- inter-op scheduler benchmarks ----

// benchInterOp measures one workload's training step at an inter-op
// width. Wall ns/op is the host cost (real goroutine speedup needs
// free cores); the reported sim-µs/step metric is the simulated
// parallel makespan and speedup×100 is the achieved inter-op speedup
// ×100 over the serial op-time sum — the modeled numbers to compare
// across widths, following the suite's simulated-timing philosophy.
func benchInterOp(b *testing.B, name string, interop int) {
	m, err := core.New(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetSmall, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(),
		runtime.WithSeed(1),
		runtime.WithInterOpWorkers(interop),
		runtime.WithTrace(),
	)
	if err := core.Step(m, s, core.ModeTraining); err != nil { // compile the plan
		b.Fatal(err)
	}
	s.ResetTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Step(m, s, core.ModeTraining); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	io := profiling.InterOp(s.Trace())
	if io.Steps > 0 {
		b.ReportMetric(float64(io.Makespan.Microseconds())/float64(io.Steps), "sim-µs/step")
		b.ReportMetric(100*io.Achieved, "speedup×100")
	}
}

// The wide-graph workloads the scheduler exists for: residual's
// parallel towers and memnet's independent hops.
func BenchmarkInterOpResidual(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("interop%d", w), func(b *testing.B) { benchInterOp(b, "residual", w) })
	}
}

func BenchmarkInterOpMemnet(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("interop%d", w), func(b *testing.B) { benchInterOp(b, "memnet", w) })
	}
}

// ---- serving engine benchmarks ----

// benchServe measures the engine end to end: concurrent clients
// submitting single-example requests through the micro-batching queue
// and session pool. Reported ns/op is per request.
func benchServe(b *testing.B, name string, sessions, maxBatch, clients int) {
	benchServeOpts(b, name, clients, serve.Options{
		Sessions: sessions, MaxBatch: maxBatch, MaxDelay: 500 * time.Microsecond,
	})
}

func benchServeOpts(b *testing.B, name string, clients int, opts serve.Options) {
	m, err := core.New(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1, Batch: opts.MaxBatch}); err != nil {
		b.Fatal(err)
	}
	e, err := serve.New(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	sig := m.Signature(core.ModeInference)
	example := map[string]*tensor.Tensor{}
	for _, in := range sig.Inputs {
		example[in.Name] = tensor.New(in.ExampleShape()...)
	}
	ctx := context.Background()
	// Warm every worker session's plan cache: enough concurrent
	// requests that each worker executes at least one batch.
	var warm sync.WaitGroup
	for i := 0; i < opts.Sessions*e.MaxBatch(); i++ {
		warm.Add(1)
		go func() {
			defer warm.Done()
			if _, err := e.Infer(ctx, example); err != nil {
				b.Error(err)
			}
		}()
	}
	warm.Wait()
	if b.Failed() {
		b.FailNow()
	}
	e.ResetStats() // exclude the compile-cost warmup from fill/p99
	b.ResetTimer()
	// Exactly `clients` concurrent submitters sharing b.N requests
	// (RunParallel's SetParallelism would multiply by GOMAXPROCS and
	// measure a different load).
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c < b.N%clients {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := e.Infer(ctx, example); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	s := e.Stats()
	b.ReportMetric(s.MeanBatchFill, "fill")
	b.ReportMetric(float64(s.P99Latency.Microseconds()), "p99-µs")
}

// benchTrainReplicas measures data-parallel training throughput: one
// global step (4 chunks of the tiny-preset batch, gradients +
// ascending-chunk all-reduce + replicated apply) per iteration at the
// given replica count on a scoped shared pool. Comparing the
// replicas=1 and replicas=4 variants on a multi-core runner shows the
// wall speedup the deterministic all-reduce leaves on the table;
// results are bit-identical at every width (the dist harness pins it).
func benchTrainReplicas(b *testing.B, replicas int) {
	pool := sched.New(8)
	defer pool.Close()
	tr, err := dist.New("autoenc", dist.Options{
		Replicas: replicas, Chunks: 4, Preset: core.PresetTiny, Seed: 1, Pool: pool,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Train(1); err != nil { // compile plans outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	t := tr.Timing()
	if t.Wall > 0 {
		b.ReportMetric(float64(t.GradMax)/float64(t.Wall), "grad-frac")
	}
}

func BenchmarkTrainReplicas1(b *testing.B) { benchTrainReplicas(b, 1) }
func BenchmarkTrainReplicas4(b *testing.B) { benchTrainReplicas(b, 4) }

// benchTrainFused measures the horizontally fused training array on
// the same workload/grid as benchTrainReplicas: one fused Step
// advances width trainees, so ns/op at width K is directly comparable
// to K× the replica benchmark's ns/op (the sequential-standalone
// baseline HFTA-style fusion amortizes).
func benchTrainFused(b *testing.B, width int) {
	pool := sched.New(8)
	defer pool.Close()
	arr, err := fuse.New("autoenc", fuse.Options{
		Width: width, Chunks: 4, Preset: core.PresetTiny, Seed: 1, Pool: pool,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer arr.Close()
	if _, err := arr.Step(); err != nil { // compile plans outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	t := arr.Timing()
	if t.Wall > 0 {
		b.ReportMetric(float64(t.Steps*width)/t.Wall.Seconds(), "trainee-steps/s")
	}
}

func BenchmarkTrainFused1(b *testing.B) { benchTrainFused(b, 1) }
func BenchmarkTrainFused4(b *testing.B) { benchTrainFused(b, 4) }

func BenchmarkServeAlexnet(b *testing.B) { benchServe(b, "alexnet", 2, 8, 8) }
func BenchmarkServeMemnet(b *testing.B)  { benchServe(b, "memnet", 2, 8, 8) }
func BenchmarkServeUnbatched(b *testing.B) {
	// MaxBatch 1 isolates the cost of the queue + pool without
	// coalescing — the baseline dynamic batching must beat.
	benchServe(b, "memnet", 2, 1, 8)
}

// BenchmarkServeOverload hammers a deliberately small engine (one
// session, 4-deep queues, a 25ms deadline budget) with 32 closed-loop
// clients — far past capacity. ns/op is per *submitted* request;
// goodput×100 and shed×100 report what fraction completed in budget
// vs was refused (rejected, shed, or expired). The admission layer's
// job is a high shed fraction with nonzero goodput — never a stall.
func BenchmarkServeOverload(b *testing.B) {
	m, err := core.New("memnet")
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1, Batch: 4}); err != nil {
		b.Fatal(err)
	}
	e, err := serve.New(m, serve.Options{
		Sessions: 1, MaxBatch: 4, MaxDelay: 200 * time.Microsecond,
		QueueLen: 4, DefaultDeadline: 25 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	sig := m.Signature(core.ModeInference)
	example := map[string]*tensor.Tensor{}
	for _, in := range sig.Inputs {
		example[in.Name] = tensor.New(in.ExampleShape()...)
	}
	ctx := context.Background()
	if _, err := e.Infer(ctx, example); err != nil { // compile the plan
		b.Fatal(err)
	}
	e.ResetStats()
	b.ResetTimer()
	const clients = 32
	var ok, refused, failed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c < b.N%clients {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				switch _, err := e.Infer(ctx, example); {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, serve.ErrOverloaded) || errors.Is(err, serve.ErrExpired):
					refused.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() > 0 {
		b.Fatalf("%d requests failed with unexpected errors", failed.Load())
	}
	total := ok.Load() + refused.Load()
	if total > 0 {
		b.ReportMetric(100*float64(ok.Load())/float64(total), "goodput×100")
		b.ReportMetric(100*float64(refused.Load())/float64(total), "shed×100")
	}
	s := e.Stats()
	b.ReportMetric(float64(s.P99Latency.Microseconds()), "p99-µs")
}

// BenchmarkServeIntraOp serves with real intra-op kernel parallelism
// (4-wide pools on the shared worker pool) against the serial
// BenchmarkServeAlexnet baseline: on a multi-core host the per-request
// latency drops, while the worker-pool bound keeps total execution
// goroutines flat no matter the load. Bit-identical results either
// way (the engine's correctness tests pin that).
func BenchmarkServeIntraOp(b *testing.B) {
	benchServeOpts(b, "alexnet", 8, serve.Options{
		Sessions: 2, MaxBatch: 8, MaxDelay: 500 * time.Microsecond,
		IntraOpWorkers: 4,
	})
}
