// Package repro's benchmarks regenerate each of the paper's tables and
// figures (one benchmark per artifact, at the tiny preset so a full
// -bench=. sweep stays tractable) and measure per-step cost of every
// workload in both modes. The EXPERIMENTS.md numbers come from the
// fathom CLI at the reference preset; these benches are the CI-sized
// equivalents.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/runtime"

	_ "repro/internal/models/all"
)

func benchOpts() experiments.Options {
	return experiments.Options{Preset: core.PresetTiny, Steps: 2, Warmup: 1, Seed: 1}
}

// ---- one benchmark per table/figure ----

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); r.Text == "" {
			b.Fatal("empty table1")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table2(); r.Text == "" {
			b.Fatal("empty table2")
		}
	}
}

func BenchmarkFig1_Stationarity(b *testing.B) {
	o := benchOpts()
	o.Steps = 16
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_CumulativeOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_ClassHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_SimilarityDendrogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_TrainVsInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_deepq(b *testing.B)   { benchFig6(b, "deepq") }
func BenchmarkFig6_seq2seq(b *testing.B) { benchFig6(b, "seq2seq") }
func BenchmarkFig6_memnet(b *testing.B)  { benchFig6(b, "memnet") }

func benchFig6(b *testing.B, model string) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchOpts(), model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Overhead(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- per-workload step benchmarks (small preset) ----

func benchStep(b *testing.B, name string, mode core.Mode) {
	m, err := core.New(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetSmall, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	s := runtime.NewSession(m.Graph(), runtime.WithSeed(1))
	if err := m.Step(s, mode); err != nil { // warm the plan cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(s, mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepTraining(b *testing.B) {
	for _, name := range experiments.Workloads() {
		b.Run(name, func(b *testing.B) { benchStep(b, name, core.ModeTraining) })
	}
}

func BenchmarkStepInference(b *testing.B) {
	for _, name := range experiments.Workloads() {
		b.Run(name, func(b *testing.B) { benchStep(b, name, core.ModeInference) })
	}
}
