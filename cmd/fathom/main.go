// Command fathom runs the Fathom workload suite, regenerates the
// paper's tables and figures, and serves workloads over HTTP.
//
// Usage:
//
//	fathom list                         # registered workloads (Table II)
//	fathom run   -model alexnet ...     # profile one workload
//	fathom profile -interop 4 ...       # inter-op parallelism report
//	fathom train -replicas 4 ...        # data-parallel training scaling
//	fathom serve -model alexnet ...     # HTTP/JSON inference serving
//	fathom loadtest -model memnet ...   # open-loop overload test -> BENCH_serve.json
//	fathom table1 | table2              # the paper's tables
//	fathom fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | overhead
//	fathom all                          # everything, optionally to -out
//
// Common flags: -preset ref|small|tiny, -steps N, -warmup N, -seed N,
// -workers N (modeled intra-op), -intraop N (real intra-op on the
// shared pool), -interop N, -pool N (shared worker-pool size),
// -device cpu|gpu, -mode training|inference, -out DIR. Serving flags:
// -addr, -sessions, -maxbatch, -maxdelay, -queue, -deadline, plus
// observability: -tracesample N (trace every Nth request), -tracedir
// DIR (periodic Chrome-trace dumps), -pprof (mount /debug/pprof);
// /metrics always serves Prometheus text. Load-test flags: -qps (0 =
// measure capacity), -duration, -arrival poisson|uniform, -batchfrac,
// -bench FILE. Training: -trace dumps per-step phase telemetry.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loadgen"
	_ "repro/internal/models/all"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	presetName := fs.String("preset", "ref", "workload scale: ref, small or tiny")
	steps := fs.Int("steps", 0, "measured steps per run (0 = experiment default)")
	warmup := fs.Int("warmup", 0, "warmup steps per run (0 = experiment default)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "modeled intra-op workers")
	intraop := fs.Int("intraop", 1, "real intra-op workers on the shared pool (run, profile, serve)")
	interop := fs.Int("interop", 1, "inter-op scheduler width (run, profile, serve)")
	poolSize := fs.Int("pool", 0, "shared worker-pool size (0 = max(2, GOMAXPROCS))")
	device := fs.String("device", "cpu", "cpu or gpu (modeled)")
	mode := fs.String("mode", "training", "training or inference")
	model := fs.String("model", "", "workload name (run, fig6); comma-separated list (serve)")
	outDir := fs.String("out", "", "directory for CSV outputs (optional)")
	addr := fs.String("addr", "localhost:7711", "listen address (serve)")
	sessions := fs.Int("sessions", 2, "worker sessions per served model (serve)")
	maxBatch := fs.Int("maxbatch", 8, "micro-batch window: max coalesced requests per run (serve)")
	maxDelay := fs.Duration("maxdelay", 2*time.Millisecond, "max wait for a micro-batch to fill (serve)")
	heads := fs.Int("heads", 0, "attention head-count override for multi-head workloads; 0 = preset default, must divide the embedding dim (run, serve)")
	replicas := fs.Int("replicas", 4, "data-parallel model replicas (train)")
	chunks := fs.Int("chunks", 4, "micro-batch chunks per global step; replicas must divide it (train)")
	fuseWidth := fs.Int("fuse", 0, "horizontal fusion width: also train K instances in one fused graph, 0 = off (train)")
	queueLen := fs.Int("queue", 0, "admission queue cap per priority lane, 0 = 4x maxbatch (serve, loadtest)")
	deadline := fs.Duration("deadline", 0, "per-request deadline budget, 0 = none for serve / 250ms for loadtest (serve, loadtest)")
	qps := fs.Float64("qps", 0, "1x-stage offered rate; 0 measures engine capacity first (loadtest)")
	ltDur := fs.Duration("duration", 2*time.Second, "per-stage duration (loadtest)")
	arrival := fs.String("arrival", "poisson", "arrival distribution: poisson or uniform (loadtest)")
	batchFrac := fs.Float64("batchfrac", 0.5, "fraction of traffic on the batch priority lane (loadtest)")
	benchOut := fs.String("bench", "BENCH_serve.json", "load-test result file; with -out, written inside it (loadtest)")
	traceSample := fs.Int("tracesample", 0, "trace every Nth request end to end, 0 = off (serve)")
	traceDir := fs.String("tracedir", "", "directory for periodic Chrome-trace dumps of sampled requests; implies -tracesample 1000 if unset (serve)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the serve mux (serve)")
	trainTrace := fs.Bool("trace", false, "dump per-step sample/grad/reduce/apply phase telemetry per workload (train)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	preset, err := core.ParsePreset(*presetName)
	if err != nil {
		fatal(err)
	}
	if *poolSize > 0 {
		sched.SetDefaultSize(*poolSize)
	}
	// Head-count overrides are validated twice: non-negative here, and
	// divisibility (embed % heads == 0) by the workload's Setup, which
	// knows the preset's embedding dim and fails with a clear error.
	if *heads < 0 {
		fatal(fmt.Errorf("-heads %d must be >= 0 (0 keeps the preset default)", *heads))
	}
	opts := experiments.Options{Preset: preset, Steps: *steps, Warmup: *warmup, Seed: *seed}

	emit := func(r experiments.Result) {
		fmt.Printf("== %s ==\n%s\n", r.Title, r.Text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("(csv written to %s)\n\n", path)
		}
	}

	switch cmd {
	case "list":
		for _, name := range core.Names() {
			m, err := core.New(name)
			if err != nil {
				fatal(err)
			}
			meta := m.Meta()
			fmt.Printf("%-10s %d  %-22s %-14s %s\n", name, meta.Year, meta.Style, meta.Task, meta.Dataset)
		}
	case "run":
		if *model == "" {
			fatal(fmt.Errorf("run requires -model"))
		}
		md, err := core.ParseMode(*mode)
		if err != nil {
			fatal(err)
		}
		st := *steps
		if st == 0 {
			st = 4
		}
		res, err := core.SetupAndRun(*model, core.Config{Preset: preset, Seed: *seed, Heads: *heads}, core.RunOptions{
			Mode: md, Steps: st, Warmup: *warmup, Workers: *workers, IntraOp: *intraop, InterOp: *interop, Device: *device, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s %s on %s, %d steps (%d workers, %d intra-op, %d inter-op): %v/step simulated, %v/step wall\n\n",
			*model, md, *device, st, *workers, *intraop, *interop,
			res.SimTime/time.Duration(st), res.WallTime/time.Duration(st))
		fmt.Println(res.Profile)
	case "profile":
		// Parallelism characterization across both axes: per workload,
		// how much op time is on the critical path, the inter-op
		// speedup the scheduler achieved at -interop vs the
		// dependency-structure bound, and real vs modeled intra-op
		// speedup at -intraop. Emits CSV with -out like the fig
		// commands.
		md, err := core.ParseMode(*mode)
		if err != nil {
			fatal(err)
		}
		ia := *intraop
		if ia == 1 {
			ia = *workers // -workers N alone still sweeps the intra axis
		}
		var names []string
		if *model != "" {
			names = strings.Split(*model, ",")
		}
		must(experiments.ProfileParallel(
			experiments.Options{Preset: preset, Steps: *steps, Warmup: *warmup, Seed: *seed}, md, *interop, ia, names, *device))(emit)
	case "train":
		// Data-parallel training: replicate each workload over shards
		// of its global batch on the shared pool, report achieved vs
		// achievable scaling, and live-check the bit-identical-across-
		// replica-counts contract. With -fuse K, additionally train a
		// width-K horizontally fused array per workload. Emits CSV with
		// -out and persists the throughput sweep as BENCH_train.json.
		validateTrainFlags(*replicas, *chunks, *fuseWidth)
		var names []string
		if *model != "" {
			names = strings.Split(*model, ",")
		}
		res, bench, err := experiments.TrainScaling(opts, *replicas, *chunks, *intraop, *fuseWidth, names)
		if err != nil {
			fatal(err)
		}
		emit(res)
		writeTrainBench(bench, *outDir)
		if *trainTrace {
			// Per-step phase breakdown behind the aggregate numbers
			// above: a fresh run per workload with the trainer's phase
			// ring dumped before teardown.
			phases, err := experiments.TrainPhases(opts, *replicas, *chunks, *intraop, *fuseWidth, names)
			if err != nil {
				fatal(err)
			}
			emit(phases)
		}
	case "serve":
		if *model == "" {
			fatal(fmt.Errorf("serve requires -model (comma-separated workload names)"))
		}
		dev, err := core.NewDevice(*device)
		if err != nil {
			fatal(err)
		}
		srv := serve.NewServer()
		// Telemetry wiring: -tracedir implies sampling; the collector is
		// shared by the HTTP layer (samples at admission) and every
		// engine (builds the span tree), so the sampling decision is
		// made exactly once per request.
		sample := *traceSample
		if *traceDir != "" && sample <= 0 {
			sample = 1000
		}
		var collector *telemetry.TraceCollector
		if sample > 0 {
			collector = telemetry.NewTraceCollector(sample, 256)
		}
		seen := map[string]bool{}
		for _, name := range strings.Split(*model, ",") {
			name = strings.TrimSpace(name)
			if seen[name] {
				continue
			}
			seen[name] = true
			m, err := core.New(name)
			if err != nil {
				fatal(err)
			}
			// Build the graph's batch axis at the micro-batch window so
			// coalesced requests fill one compiled-plan run.
			if err := m.Setup(core.Config{Preset: preset, Seed: *seed, Batch: *maxBatch, Heads: *heads}); err != nil {
				fatal(fmt.Errorf("setup %s: %w", name, err))
			}
			eng, err := serve.New(m, serve.Options{
				Sessions:        *sessions,
				MaxBatch:        *maxBatch,
				MaxDelay:        *maxDelay,
				Seed:            *seed,
				Device:          dev,
				InterOpWorkers:  *interop,
				IntraOpWorkers:  *intraop,
				QueueLen:        *queueLen,
				DefaultDeadline: *deadline,
				Trace:           collector,
			})
			if err != nil {
				fatal(err)
			}
			defer eng.Close()
			srv.Register(eng)
			sig := eng.Signature()
			fmt.Printf("serving %-10s  inputs %v  outputs %v  maxbatch %d\n",
				name, sig.InputNames(), sig.OutputNames(), eng.MaxBatch())
		}
		srv.EnableTelemetry(telemetry.Default(), collector)
		if *pprofOn {
			srv.EnablePprof()
		}
		fmt.Printf("\nlistening on http://%s\n", *addr)
		fmt.Printf("  POST /v1/models/%s:infer   {\"inputs\": {...}}\n", srv.Names()[0])
		fmt.Println("  GET  /v1/models  /healthz  /stats  /metrics")
		if collector != nil {
			fmt.Printf("  GET  /debug/trace (sampling 1/%d requests)\n", sample)
		}
		if *pprofOn {
			fmt.Println("  GET  /debug/pprof/")
		}
		httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		drainStop := make(chan struct{})
		drainDone := make(chan struct{})
		if *traceDir != "" {
			if err := os.MkdirAll(*traceDir, 0o755); err != nil {
				fatal(err)
			}
			go drainTraces(collector, *traceDir, drainStop, drainDone)
		} else {
			close(drainDone)
		}
		errc := make(chan error, 1)
		go func() { errc <- httpSrv.ListenAndServe() }()
		select {
		case err := <-errc:
			fatal(err)
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shctx)
			// Stop the drainer only after in-flight requests finished so
			// the final flush captures the last interval's traces.
			close(drainStop)
			<-drainDone
		}
	case "loadtest":
		// Serving robustness: drive one engine open-loop at
		// 0.5x/1x/2x of its measured capacity with mixed-priority
		// traffic and a deadline budget, and persist the goodput/
		// shed-rate/latency sweep as BENCH_serve.json — the serving
		// perf trajectory later PRs diff against.
		arr, err := loadgen.ParseArrival(*arrival)
		if err != nil {
			fatal(err)
		}
		name := *model
		if name == "" {
			name = "memnet"
		}
		res, rep, err := experiments.LoadTest(opts, experiments.LoadTestOptions{
			Model:     name,
			QPS:       *qps,
			Duration:  *ltDur,
			Arrival:   arr,
			BatchFrac: *batchFrac,
			Deadline:  *deadline,
			Sessions:  *sessions,
			MaxBatch:  *maxBatch,
			MaxDelay:  *maxDelay,
			QueueLen:  *queueLen,
			InterOp:   *interop,
			IntraOp:   *intraop,
		})
		if err != nil {
			fatal(err)
		}
		emit(res)
		writeBench(rep, *benchOut, *outDir)
	case "table1":
		emit(experiments.Table1())
	case "table2":
		emit(experiments.Table2())
	case "fig1":
		must(experiments.Fig1(opts))(emit)
	case "fig2":
		must(experiments.Fig2(opts))(emit)
	case "fig3":
		must(experiments.Fig3(opts))(emit)
	case "fig4":
		must(experiments.Fig4(opts))(emit)
	case "fig5":
		must(experiments.Fig5(opts))(emit)
	case "fig6":
		models := experiments.Fig6Models()
		if *model != "" {
			models = strings.Split(*model, ",")
		}
		for _, m := range models {
			must(experiments.Fig6(opts, m))(emit)
		}
	case "overhead":
		must(experiments.Overhead(opts))(emit)
	case "ablation":
		must(experiments.Ablation(opts))(emit)
	case "all":
		emit(experiments.Table1())
		emit(experiments.Table2())
		must(experiments.Fig1(opts))(emit)
		// Profile the suite once and reuse it for Figures 2–4.
		suite, err := experiments.ProfileSuite(opts, core.ModeTraining)
		if err != nil {
			fatal(err)
		}
		emit(experiments.Fig2From(suite))
		emit(experiments.Fig3From(suite))
		emit(experiments.Fig4From(suite))
		must(experiments.Fig5(opts))(emit)
		for _, m := range experiments.Fig6Models() {
			must(experiments.Fig6(opts, m))(emit)
		}
		must(experiments.ProfileParallel(opts, core.ModeTraining, 4, 4, nil, ""))(emit)
		validateTrainFlags(*replicas, *chunks, *fuseWidth)
		trainRes, trainBench, err := experiments.TrainScaling(opts, *replicas, *chunks, 1, *fuseWidth, nil)
		if err != nil {
			fatal(err)
		}
		emit(trainRes)
		writeTrainBench(trainBench, *outDir)
		// Short serving overload sweep: keep `all` runs tractable while
		// still exercising the admission path and refreshing the bench
		// trajectory file.
		ltRes, ltRep, err := experiments.LoadTest(opts, experiments.LoadTestOptions{
			Model: "memnet", Duration: 500 * time.Millisecond, BatchFrac: *batchFrac,
		})
		if err != nil {
			fatal(err)
		}
		emit(ltRes)
		writeBench(ltRep, *benchOut, *outDir)
		must(experiments.Overhead(opts))(emit)
		must(experiments.Ablation(opts))(emit)
	default:
		usage()
		os.Exit(2)
	}
}

// drainTraces periodically empties the trace collector into numbered
// Chrome-trace files under dir (open in chrome://tracing or Perfetto),
// with a final flush when the server shuts down so sampled requests
// from the last interval aren't lost.
func drainTraces(tc *telemetry.TraceCollector, dir string, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	n := 0
	flush := func() {
		traces := tc.Drain()
		if len(traces) == 0 {
			return
		}
		path := filepath.Join(dir, fmt.Sprintf("trace-%03d.json", n))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fathom: trace dump:", err)
			return
		}
		if err := telemetry.WriteChromeTraces(f, traces); err != nil {
			fmt.Fprintln(os.Stderr, "fathom: trace dump:", err)
		}
		_ = f.Close()
		fmt.Printf("(%d sampled traces written to %s)\n", len(traces), path)
		n++
	}
	for {
		select {
		case <-tick.C:
			flush()
		case <-stop:
			flush()
			return
		}
	}
}

// validateTrainFlags rejects inconsistent train-axis flag combinations
// up front with a clear error instead of a mid-run failure.
func validateTrainFlags(replicas, chunks, fuseWidth int) {
	if replicas < 1 {
		fatal(fmt.Errorf("train: -replicas %d must be >= 1", replicas))
	}
	if chunks < 1 {
		fatal(fmt.Errorf("train: -chunks %d must be >= 1", chunks))
	}
	if chunks%replicas != 0 {
		fatal(fmt.Errorf("train: -replicas %d must divide -chunks %d (each replica owns an equal share of the chunk grid)", replicas, chunks))
	}
	if fuseWidth < 0 {
		fatal(fmt.Errorf("train: -fuse %d must be >= 0 (0 disables fusion)", fuseWidth))
	}
}

// writeTrainBench persists the training-throughput sweep as the
// BENCH_train.json trajectory file (inside -out when set).
func writeTrainBench(tb *experiments.TrainBench, outDir string) {
	payload, err := experiments.WriteTrainBenchJSON(tb)
	if err != nil {
		fatal(err)
	}
	path := "BENCH_train.json"
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
		path = filepath.Join(outDir, path)
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("(bench written to %s)\n\n", path)
}

// writeBench persists a load-test report as the BENCH_serve.json
// trajectory file (inside -out when set).
func writeBench(rep *loadgen.Report, benchPath, outDir string) {
	payload, err := experiments.WriteBenchJSON(rep)
	if err != nil {
		fatal(err)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
		benchPath = filepath.Join(outDir, filepath.Base(benchPath))
	}
	if err := os.WriteFile(benchPath, payload, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("(bench written to %s)\n\n", benchPath)
}

func must(r experiments.Result, err error) func(func(experiments.Result)) {
	if err != nil {
		fatal(err)
	}
	return func(emit func(experiments.Result)) { emit(r) }
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fathom:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fathom <command> [flags]

commands:
  list       registered workloads
  run        profile one workload        (-model, -mode, -device, -workers, -intraop, -interop, -heads)
  profile    parallelism report          (-interop N -intraop N; critical path, achieved vs
             achievable inter-op speedup, real vs modeled intra-op speedup; CSV with -out)
  train      training scaling            (-replicas N -chunks K -fuse K -model a,b -steps N -intraop N;
             data-parallel achieved vs achievable scaling plus horizontally fused arrays,
             bit-identical across replica counts and fused trainees -> BENCH_train.json;
             -trace dumps per-step sample/grad/reduce/apply phase telemetry)
  serve      HTTP/JSON inference serving (-model a,b -addr -sessions -maxbatch -maxdelay -interop -intraop
             -queue N -deadline D: bounded admission lanes + per-model deadline budget;
             -heads N overrides the attention workload's head count;
             -tracesample N traces every Nth request, -tracedir DIR dumps Chrome traces,
             -pprof mounts /debug/pprof; /metrics always exposes Prometheus text)
  loadtest   open-loop overload test     (-model m -qps X -duration D -arrival poisson|uniform -batchfrac F
             -deadline D -queue N; 0.5x/1x/2x capacity sweep -> goodput, shed rate, p50/p99/p999,
             persisted as BENCH_serve.json via -bench FILE)
  table1     architecture-survey table
  table2     workload inventory
  fig1       op-time stationarity
  fig2       cumulative heavy-op curves
  fig3       class heat map
  fig4       similarity dendrogram
  fig5       train/inference × CPU/GPU
  fig6       op-type scaling vs workers  (-model deepq,seq2seq,memnet)
  overhead   inter-op overhead (§V-A)
  ablation   optimizer-pass and kernel-fusion ablations
  all        everything

flags: -preset ref|small|tiny  -steps N  -warmup N  -seed N  -out DIR
serve: exposes POST /v1/models/<name>:infer, GET /v1/models, /healthz, /stats;
       requests carry one example per call and are dynamically micro-batched`)
}
