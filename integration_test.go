// End-to-end integration tests: the full stack — synthetic data,
// graph construction, autodiff, optimizer ops, traced execution —
// must actually learn, and the suite-level invariants the paper's
// methodology rests on must hold across workloads.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/profiling"
	"repro/internal/runtime"

	_ "repro/internal/models/all"
)

// TestEndToEndClassifierReachesHighAccuracy trains a small MLP on the
// synthetic digit task to well above chance — the "does the whole
// stack actually work" test.
func TestEndToEndClassifierReachesHighAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	const batch = 32
	rng := rand.New(rand.NewSource(1))
	data := dataset.NewMNIST(2)

	g := graph.New()
	x := g.Placeholder("x", batch, 784)
	y := g.Placeholder("y", batch)
	h, p1 := nn.Dense(g, rng, "fc1", x, 784, 64, ops.Relu)
	logits, p2 := nn.Dense(g, rng, "fc2", h, 64, 10, nil)
	loss := ops.CrossEntropy(logits, y)
	acc := ops.Mean(ops.Equal(ops.ArgMax(logits), y))
	trainOp, err := nn.ApplyUpdates(g, loss, append(p1, p2...), nn.SGD, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sess := runtime.NewSession(g, runtime.WithSeed(1))
	sess.SetTraining(true)
	var lastAcc float64
	for i := 0; i < 300; i++ {
		images, labels := data.Batch(batch)
		out := sess.MustRun([]*graph.Node{loss, acc, trainOp}, runtime.Feeds{x: images, y: labels})
		lastAcc = float64(out[1].Data()[0])
	}
	if lastAcc < 0.7 {
		t.Fatalf("classifier should reach >70%% batch accuracy, got %.2f", lastAcc)
	}
}

// TestSuiteProfileDeterminism: identical seeds must produce identical
// op counts and types (timing varies; structure must not).
func TestSuiteProfileDeterminism(t *testing.T) {
	run := func() map[string]int {
		res, err := core.SetupAndRun("memnet", core.Config{Preset: core.PresetTiny, Seed: 9},
			core.RunOptions{Mode: core.ModeTraining, Steps: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, e := range res.Events {
			counts[e.Op]++
		}
		return counts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("op type sets differ: %d vs %d", len(a), len(b))
	}
	for op, n := range a {
		if b[op] != n {
			t.Fatalf("op %s count %d vs %d", op, n, b[op])
		}
	}
}

// TestHeavyTypesWithinPaperRange pins Figure 2's quantitative claim
// on the real workloads: a handful (the paper says 5–15) of op types
// reach 90% of execution time.
func TestHeavyTypesWithinPaperRange(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles all workloads")
	}
	for _, name := range core.Names() {
		res, err := core.SetupAndRun(name, core.Config{Preset: core.PresetTiny, Seed: 3},
			core.RunOptions{Mode: core.ModeTraining, Steps: 2, Warmup: 1})
		if err != nil {
			t.Fatal(err)
		}
		h := res.Profile.HeavyTypes(0.9)
		if h < 1 || h > 15 {
			t.Errorf("%s: %d op types to reach 90%% (paper: 5–15, small presets may dip lower)", name, h)
		}
	}
}

// TestStationarityOnRealWorkload pins Figure 1's claim: per-step op
// time is stationary with low variance.
func TestStationarityOnRealWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step profile")
	}
	// The small preset's millisecond-scale steps keep timer noise and
	// GC pauses from dominating the statistic (tiny steps are µs-scale
	// and their CoV reflects the host, not the workload).
	res, err := core.SetupAndRun("autoenc", core.Config{Preset: core.PresetSmall, Seed: 4},
		core.RunOptions{Mode: core.ModeTraining, Steps: 20, Warmup: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := profiling.Stationary(profiling.StepTotals(res.Events))
	if st.Samples != 20 {
		t.Fatalf("expected 20 samples, got %d", st.Samples)
	}
	if st.CoV > 0.5 {
		t.Errorf("per-step time too variable: CoV %.3f", st.CoV)
	}
	if st.Drift > 0.6 || st.Drift < -0.6 {
		t.Errorf("per-step time drifts: %.3f", st.Drift)
	}
}

// TestGPUModelSpeedsUpComputeDenseWorkloads pins Figure 5's headline:
// the modeled GPU helps the skewed, compute-dense profiles most.
func TestGPUModelSpeedsUpComputeDenseWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("two profile runs")
	}
	cpu, err := core.SetupAndRun("vgg", core.Config{Preset: core.PresetSmall, Seed: 5},
		core.RunOptions{Mode: core.ModeTraining, Steps: 2, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := core.SetupAndRun("vgg", core.Config{Preset: core.PresetSmall, Seed: 5},
		core.RunOptions{Mode: core.ModeTraining, Steps: 2, Warmup: 1, Device: "gpu"})
	if err != nil {
		t.Fatal(err)
	}
	if gpu.SimTime*2 >= cpu.SimTime {
		t.Fatalf("modeled GPU should speed vgg up >2x: cpu %v gpu %v", cpu.SimTime, gpu.SimTime)
	}
}

// TestWorkerScalingFlattensProfile pins Figure 6's qualitative claim:
// with more modeled workers, the dominant op's share shrinks (Amdahl).
func TestWorkerScalingFlattensProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("two profile runs")
	}
	prof := func(workers int) float64 {
		res, err := core.SetupAndRun("deepq", core.Config{Preset: core.PresetSmall, Seed: 6},
			core.RunOptions{Mode: core.ModeTraining, Steps: 3, Warmup: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.Shares()[0].Fraction
	}
	top1 := prof(1)
	top8 := prof(8)
	if top8 >= top1 {
		t.Errorf("dominant op share should shrink with parallelism: %.3f -> %.3f", top1, top8)
	}
}
