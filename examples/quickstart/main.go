// Quickstart: build a small classifier directly on the dataflow
// framework — graph construction, symbolic gradients, optimizer ops,
// a traced session — and print the training curve plus the resulting
// operation profile. This is the five-minute tour of the substrate
// underneath the Fathom workloads.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/models/nn"
	"repro/internal/ops"
	"repro/internal/profiling"
	"repro/internal/runtime"
)

func main() {
	const (
		batch   = 32
		classes = 10
		hidden  = 128
		steps   = 60
	)
	rng := rand.New(rand.NewSource(1))
	data := dataset.NewMNIST(2)

	// 1. Declare the graph: a two-layer classifier.
	g := graph.New()
	x := g.Placeholder("images", batch, dataset.MNISTSide*dataset.MNISTSide)
	y := g.Placeholder("labels", batch)
	h, p1 := nn.Dense(g, rng, "fc1", x, dataset.MNISTSide*dataset.MNISTSide, hidden, ops.Relu)
	logits, p2 := nn.Dense(g, rng, "fc2", h, hidden, classes, nil)
	loss := ops.CrossEntropy(logits, y)
	acc := ops.Mean(ops.Equal(ops.ArgMax(logits), y))

	// 2. Symbolic gradients + SGD updates, grouped in one fetch.
	params := append(p1, p2...)
	trainOp, err := nn.ApplyUpdates(g, loss, params, nn.SGD, 0.1)
	if err != nil {
		panic(err)
	}

	// 3. Train under a traced session.
	sess := runtime.NewSession(g, runtime.WithSeed(1), runtime.WithTrace())
	sess.SetTraining(true)
	fmt.Println("training a 784-128-10 classifier on synthetic MNIST digits:")
	for i := 0; i < steps; i++ {
		images, labels := data.Batch(batch)
		out := sess.MustRun([]*graph.Node{loss, acc, trainOp},
			runtime.Feeds{x: images, y: labels})
		if i%10 == 0 || i == steps-1 {
			fmt.Printf("  step %3d  loss %.4f  batch accuracy %.2f\n",
				i, out[0].Data()[0], out[1].Data()[0])
		}
	}

	// 4. Where did the time go? The same operation-level profile the
	// Fathom characterization uses.
	prof := profiling.Collect("quickstart", "training", steps, sess.Trace())
	fmt.Println("\noperation profile:")
	for _, s := range prof.Shares() {
		if s.Fraction < 0.02 {
			continue
		}
		fmt.Printf("  %-22s %-24s %5.1f%%\n", s.Op, s.Class, 100*s.Fraction)
	}
}
