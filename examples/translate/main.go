// Translate: train the seq2seq workload on the synthetic WMT-style
// language pair (reversed + permuted token sequences) and watch the
// attention encoder–decoder learn it. Demonstrates driving a Fathom
// workload through the standard model interface.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runtime"

	_ "repro/internal/models/all"
)

func main() {
	m, err := core.New("seq2seq")
	if err != nil {
		panic(err)
	}
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 42}); err != nil {
		panic(err)
	}
	meta := m.Meta()
	fmt.Printf("%s (%d): %s\n", meta.Name, meta.Year, meta.Purpose)
	fmt.Printf("graph: %d nodes\n\n", m.Graph().NumNodes())

	sess := runtime.NewSession(m.Graph(), runtime.WithSeed(42))
	rep := m.(core.LossReporter)
	fmt.Println("training on the synthetic language pair (reversal + token permutation):")
	fmt.Printf("  uniform baseline: per-token cross-entropy = ln(V) ≈ 3.69\n")
	var avg float64
	for i := 1; i <= 400; i++ {
		if err := core.Step(m, sess, core.ModeTraining); err != nil {
			panic(err)
		}
		avg += rep.LastLoss()
		if i%50 == 0 {
			fmt.Printf("  steps %4d–%4d  mean per-token cross-entropy %.4f\n", i-49, i, avg/50)
			avg = 0
		}
	}
	fmt.Println("\nswitching to inference (forward translation pass):")
	for i := 0; i < 3; i++ {
		if err := core.Step(m, sess, core.ModeInference); err != nil {
			panic(err)
		}
	}
	fmt.Println("done — loss should have fallen well below the uniform baseline.")
}
