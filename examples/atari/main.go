// Atari: run the deepq workload's full reinforcement-learning loop —
// ε-greedy play in the bundled arcade-learning-environment simulator,
// experience replay, target-network Q-learning — and render the game
// screen as ASCII art while the agent trains.
package main

import (
	"fmt"
	"strings"

	"repro/internal/ale"
	"repro/internal/core"
	"repro/internal/models/deepq"
	"repro/internal/runtime"
)

// asciiFrame downsamples the 84×84 screen to terminal art.
func asciiFrame(screen []float32) string {
	const step = 3 // 84/3 = 28 columns
	shades := []byte(" .:*#@")
	var b strings.Builder
	for y := 0; y < ale.Height; y += step + 1 {
		for x := 0; x < ale.Width; x += step {
			var sum float32
			for dy := 0; dy < step && y+dy < ale.Height; dy++ {
				for dx := 0; dx < step && x+dx < ale.Width; dx++ {
					sum += screen[(y+dy)*ale.Width+(x+dx)]
				}
			}
			v := int(sum / (step * step) * float32(len(shades)-1) * 1.5)
			if v >= len(shades) {
				v = len(shades) - 1
			}
			b.WriteByte(shades[v])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func main() {
	m := deepq.New()
	if err := m.Setup(core.Config{Preset: core.PresetTiny, Seed: 7}); err != nil {
		panic(err)
	}
	sess := runtime.NewSession(m.Graph(), runtime.WithSeed(7))
	env := m.Env()
	game := env.Game()

	fmt.Printf("deepq learning %s (replay + target network + RMSProp)\n\n", game.Name())
	screen := make([]float32, ale.Width*ale.Height)
	for step := 0; step <= 120; step++ {
		if err := core.Step(m, sess, core.ModeTraining); err != nil {
			panic(err)
		}
		if step%40 == 0 {
			game.Render(screen)
			fmt.Printf("step %d  ε=%.2f  score=%.0f  lives=%d  episode=%d\n",
				step, m.Epsilon(), game.Score(), game.Lives(), env.Episode())
			fmt.Println(asciiFrame(screen))
		}
	}
	fmt.Println("switching to greedy policy evaluation (inference):")
	for i := 0; i < 10; i++ {
		if err := core.Step(m, sess, core.ModeInference); err != nil {
			panic(err)
		}
	}
	fmt.Printf("final score %.0f after %d episodes\n", game.Score(), env.Episode())
}
