// Serving: stand up the concurrent inference engine on the alexnet
// workload, expose it over HTTP/JSON, and hammer it with concurrent
// clients — the "heavy traffic" path. Demonstrates the request-driven
// side of the standard model interface: discovery via the signature
// endpoint, single-example requests, dynamic micro-batching, and the
// engine's throughput/latency/batch-fill stats.
//
// The same server is reachable from the command line:
//
//	fathom serve -model alexnet -preset tiny -maxbatch 8
//	curl -s localhost:7711/v1/models/alexnet | jq
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/serve"

	_ "repro/internal/models/all"
)

const (
	clients   = 8
	perClient = 4
	maxBatch  = 8
)

type jsonTensor struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

func main() {
	// Build the workload with its batch axis widened to the
	// micro-batch window, then start the engine and HTTP server.
	m, err := core.New("alexnet")
	check(err)
	check(m.Setup(core.Config{Preset: core.PresetTiny, Seed: 1, Batch: maxBatch}))
	eng, err := serve.New(m, serve.Options{Sessions: 2, MaxBatch: maxBatch, MaxDelay: 5 * time.Millisecond})
	check(err)
	defer eng.Close()

	srv := serve.NewServer()
	srv.Register(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving alexnet at %s\n\n", base)

	// Discover the request contract from the signature endpoint.
	var sig struct {
		Inputs []struct {
			Name         string `json:"name"`
			ExampleShape []int  `json:"example_shape"`
		} `json:"inputs"`
		Outputs []struct {
			Name string `json:"name"`
		} `json:"outputs"`
	}
	getJSON(base+"/v1/models/alexnet", &sig)
	fmt.Printf("signature: input %s %v -> output %s\n\n",
		sig.Inputs[0].Name, sig.Inputs[0].ExampleShape, sig.Outputs[0].Name)

	// Concurrent clients, each posting single-example requests drawn
	// from the synthetic ImageNet substitute.
	side := sig.Inputs[0].ExampleShape[0]
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := dataset.NewImageNet(10, side, int64(c+1))
			for k := 0; k < perClient; k++ {
				images, labels := data.Batch(1)
				img := images.Reshape(side, side, 3)
				body, _ := json.Marshal(map[string]any{
					"inputs": map[string]jsonTensor{
						"images": {Shape: img.Shape(), Data: img.Data()},
					},
				})
				resp, err := http.Post(base+"/v1/models/alexnet:infer", "application/json", bytes.NewReader(body))
				check(err)
				if resp.StatusCode != http.StatusOK {
					msg, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					panic(fmt.Sprintf("infer returned %d: %s", resp.StatusCode, msg))
				}
				var out struct {
					Outputs map[string]jsonTensor `json:"outputs"`
				}
				check(json.NewDecoder(resp.Body).Decode(&out))
				resp.Body.Close()
				probs := out.Outputs["probs"].Data
				best, bestP := 0, float32(0)
				for i, p := range probs {
					if p > bestP {
						best, bestP = i, p
					}
				}
				fmt.Printf("client %d req %d: true class %d -> predicted %d (p=%.3f)\n",
					c, k, int(labels.At(0)), best, bestP)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := eng.Stats()
	fmt.Printf("\n%d requests from %d clients in %v\n", s.Requests, clients, elapsed.Round(time.Millisecond))
	fmt.Printf("engine: %v\n", s)
	fmt.Printf("micro-batching coalesced %d requests into %d runs (mean fill %.2f)\n",
		s.Requests, s.Batches, s.MeanBatchFill)
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	check(json.NewDecoder(resp.Body).Decode(v))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
