// Similarity: profile the whole Fathom suite and reproduce the
// paper's headline analyses in one run — the Figure 3 class heat map
// and the Figure 4 similarity dendrogram — at the fast "small" preset.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"

	_ "repro/internal/models/all"
)

func main() {
	opts := experiments.Options{Preset: core.PresetSmall, Steps: 2, Warmup: 1, Seed: 1}
	fmt.Println("profiling all eight workloads (small preset)...")
	suite, err := experiments.ProfileSuite(opts, core.ModeTraining)
	if err != nil {
		panic(err)
	}
	fig3 := experiments.Fig3From(suite)
	fmt.Printf("\n== %s ==\n%s", fig3.Title, fig3.Text)
	fig4 := experiments.Fig4From(suite)
	fmt.Printf("\n== %s ==\n%s", fig4.Title, fig4.Text)
}
