// Package repro is a from-scratch Go reproduction of "Fathom: Reference
// Workloads for Modern Deep Learning Methods" (Adolf et al., IISWC 2016).
//
// The repository contains a complete dataflow deep-learning framework
// (tensors, symbolic autodiff, an operation library, and a traced
// execution runtime), the eight Fathom workloads built on top of it, and
// the characterization toolkit that regenerates every table and figure
// of the paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
