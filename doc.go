// Package repro is a from-scratch Go reproduction of "Fathom: Reference
// Workloads for Modern Deep Learning Methods" (Adolf et al., IISWC 2016).
//
// The repository contains a complete dataflow deep-learning framework
// (tensors, symbolic autodiff, an operation library, and a traced
// execution runtime), the eight Fathom workloads built on top of it, and
// the characterization toolkit that regenerates every table and figure
// of the paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// # Execution architecture
//
// The runtime compiles each fetch set into an execution plan
// (runtime.Plan): the schedule is topologically sorted once, liveness
// analysis assigns every operation output a slot in a size-bucketed
// buffer arena (tensor.Arena), and operations implementing
// graph.IntoOp write their results into those preassigned slots, so
// steady-state steps run with near-zero heap allocation. Tensors
// returned from Session.Run are copied out of arena memory, so results
// stay valid across steps.
//
// Plan execution has two interchangeable drivers. The default runs
// the sequential schedule on the session goroutine. With
// runtime.WithInterOpWorkers(n) (CLI: -interop) a dependency-counting
// parallel scheduler drains the plan's ready queue with n worker
// goroutines instead: compilation additionally records per-step
// successor lists and in-degrees over data edges, variable hazard
// edges, a serial lane chaining Impure (stateful/RNG) operations in
// schedule order, and arena anti-dependency edges that gate buffer
// reuse on the completion of every reader of the buffer's previous
// value.
//
// # Determinism contract
//
// Execution is bit-deterministic along two axes, enforced by the
// cross-workload harness in internal/models (determinism_test.go) and
// the scheduler property tests in internal/runtime:
//
//   - Replay: two sessions with the same WithSeed over the same model
//     produce bit-identical losses, fetches and variable updates.
//   - Schedule independence: results are bit-identical for every
//     inter-op worker count. The serial-lane rule makes this hold for
//     stateful operations — anything Impure (random sampling,
//     dropout's saved mask, optimizer slot state) executes in
//     schedule order with mutual exclusion, so the RNG consumption
//     sequence never depends on scheduling; and anything mutating a
//     variable in place (graph.Mutator) is serialized against every
//     other access to that variable in schedule order.
//
// Simulated timing follows the package's philosophy for inter-op as
// for intra-op parallelism: n modeled worker lanes are list-scheduled
// and the session clock advances by the simulated makespan, so the
// profiler reports achieved and achievable (critical-path) inter-op
// speedup per workload — `fathom profile -interop N` — even on a
// single-core host.
//
// The two hottest kernels are blocked for cache behavior:
// tensor.MatMul dispatches large products to a tiled GEMM that packs A
// and B panels into contiguous scratch ahead of a 4-row register-
// blocked microkernel, and tensor.Conv2D lowers large unit-stride
// convolutions to im2col + packed matmul (1×1 convolutions go straight
// to GEMM; small or strided shapes keep the direct loop).
//
// # Serving architecture
//
// The standard model interface is request-driven: every workload
// publishes a core.Signature per mode (named input placeholders and
// named output nodes, each with an explicit batch axis) and implements
// the core.Inferencer / core.Trainer capabilities; self-feeding
// profile steps go through the core.Step adapter. On top of that
// contract, internal/serve provides the concurrent serving subsystem:
// serve.Engine owns a pool of single-goroutine runtime.Sessions over
// one shared graph, coalesces concurrent single-example requests into
// dynamic micro-batches (MaxBatch/MaxDelay) executed as one compiled-
// plan run each, supports context cancellation, and keeps an atomic
// stats block (throughput, p50/p99 latency, batch fill). serve.Server
// and `fathom serve` expose any registered workload over HTTP/JSON
// (POST /v1/models/<name>:infer, GET /v1/models, /healthz, /stats).
package repro
