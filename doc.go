// Package repro is a from-scratch Go reproduction of "Fathom: Reference
// Workloads for Modern Deep Learning Methods" (Adolf et al., IISWC 2016).
//
// The repository contains a complete dataflow deep-learning framework
// (tensors, symbolic autodiff, an operation library, and a traced
// execution runtime), the eight Fathom workloads built on top of it, and
// the characterization toolkit that regenerates every table and figure
// of the paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// # Execution architecture
//
// The runtime compiles each fetch set into an execution plan
// (runtime.Plan): the schedule is topologically sorted once, liveness
// analysis assigns every operation output a slot in a size-bucketed
// buffer arena (tensor.Arena), and operations implementing
// graph.IntoOp write their results into those preassigned slots, so
// steady-state steps run with near-zero heap allocation. Tensors
// returned from Session.Run are copied out of arena memory, so results
// stay valid across steps.
//
// Plan execution has two interchangeable drivers. The default runs
// the sequential schedule on the session goroutine. With
// runtime.WithInterOpWorkers(n) (CLI: -interop) a dependency-counting
// parallel scheduler drains the plan's ready queue with the session
// goroutine plus up to n-1 helpers instead: compilation additionally
// records per-step successor lists and in-degrees over data edges,
// variable hazard edges, a serial lane chaining Impure (stateful/RNG)
// operations in schedule order, and arena anti-dependency edges that
// gate buffer reuse on the completion of every reader of the buffer's
// previous value. The ready queue is a max-heap keyed by longest
// processing time to a sink, so the drain starts critical-path work
// first.
//
// # Shared worker pool and session lifecycle
//
// All execution helpers — intra-op kernel chunks, the inter-op drain,
// and every serve.Engine worker session — come from one process-wide
// bounded pool of persistent goroutines (internal/sched; CLI: -pool
// N). Nothing spawns goroutines per Run: a Session takes a Lease on
// the pool at creation, sized to its inter-op × intra-op width, and
// releases it in Session.Close (after which Run fails with
// runtime.ErrClosed; engines Close their sessions on shutdown). Helper
// acquisition is non-blocking and every parallel construct is written
// caller-participates-first, so pool exhaustion degrades to serial
// execution on the caller — never deadlock — and total execution
// goroutines stay bounded by the pool size no matter how many engines
// and sessions run concurrently.
//
// # Intra-op parallelism: real and modeled
//
// tensor.Pool runs the chunked loops of every kernel behind one
// interface with two strategies. The serial+simulated strategy
// (runtime.WithWorkers; CLI: -workers) executes chunks serially,
// measures them, and models the makespan of list-scheduling them over
// n lanes — the paper's Fig. 6 axis, usable on any host. The real
// strategy (runtime.WithIntraOpWorkers; CLI: -intraop) executes the
// same chunks on shared-pool goroutines and reports measured wall
// time. `fathom profile` puts the two side by side per workload.
//
// # Determinism contract
//
// Execution is bit-deterministic along two axes, enforced by the
// cross-workload harness in internal/models (determinism_test.go) and
// the scheduler property tests in internal/runtime:
//
//   - Replay: two sessions with the same WithSeed over the same model
//     produce bit-identical losses, fetches and variable updates.
//   - Schedule independence: results are bit-identical for every
//     intra-op × inter-op width combination. The serial-lane rule
//     makes this hold for stateful operations — anything Impure
//     (random sampling, dropout's saved mask, optimizer slot state)
//     executes in schedule order with mutual exclusion, so the RNG
//     consumption sequence never depends on scheduling; and anything
//     mutating a variable in place (graph.Mutator) is serialized
//     against every other access to that variable in schedule order.
//
// Intra-op width independence rests on tensor.Pool's chunking
// contract: chunk boundaries are a function of trip count and grain
// only — never of worker count or helper availability — For bodies
// are index-pure (each chunk writes only its own output range), and
// cross-chunk float32 reductions (Pool.ForSum/ForMax, used by the
// full-reduction path of tensor.Reduce) combine per-chunk partials in
// ascending chunk order at every width including 1. Pool width is
// immutable after the first region (SetWorkers panics), so modeled
// makespans can never be skewed mid-plan.
//
// Simulated timing follows the package's philosophy for inter-op as
// for intra-op parallelism: n modeled worker lanes are list-scheduled
// and the session clock advances by the simulated makespan, so the
// profiler reports achieved and achievable (critical-path) inter-op
// speedup per workload — `fathom profile -interop N` — even on a
// single-core host.
//
// The two hottest kernels are blocked for cache behavior:
// tensor.MatMul dispatches large products to a tiled GEMM that packs A
// and B panels into contiguous scratch ahead of a 4-row register-
// blocked microkernel, and tensor.Conv2D lowers large unit-stride
// convolutions to im2col + packed matmul (1×1 convolutions go straight
// to GEMM; small or strided shapes keep the direct loop).
//
// # Kernel tier 2
//
// The blocked GEMM decomposes the output into a 2-D grid of
// blockM×blockN tiles — row blocks × column panels — and the tiles of
// one reduction slab form a single flat parallel region, so big square
// and tall/skinny products alike expose mBlocks×panels independent
// work units instead of the former row-only split inside one column
// panel. B panels are packed once per slab on the calling goroutine
// and shared read-only by every lane; each lane packs A into per-lane
// scratch. Short-and-wide streaming products (fewer than
// streamSplitRows rows) chunk over columns instead of rows, so
// single-row inference GEMMs parallelize too. Tile grid, panel groups
// and chunk boundaries are pure functions of shape, and every output
// element accumulates the same products in the same ascending-slab
// order at every width, so the decomposition is invisible in the
// result bits (BENCH_kernels.json tracks the scaling win over the
// retained row-only baseline).
//
// A graph-level epilogue-fusion pass (graph.FuseEpilogues; pass 4 of
// graph.Optimize, and applied to every workload's training graph via
// nn.TrainPlan.Fuse) folds elementwise consumers — bias Add, Relu,
// Tanh, and friends — into their GEMM/Conv2D producer: a producer
// implementing graph.EpilogueProducer absorbs the consumer node in
// place (node identity preserved), eliminating one arena round-trip
// per folded op. The pass never fuses across Impure or Mutator ops,
// multi-reader intermediates (gradient taps keep pre-activations
// materialized), externally fetched/kept nodes, or shape-changing
// consumers; fused epilogues run in place over the same float
// sequence, so fused and unfused graphs are bit-identical.
//
// Axis reductions complete the chunked-combine story: max-kind
// reductions run through Pool.ForMaxVec (per-chunk partial vectors,
// combined elementwise in ascending chunk order), and reductions with
// many outputs parallelize over output fibers, each fiber folded whole
// in ascending input order — bit-identical at every width. Optimizer
// slot state (momentum/RMSProp/Adam/Adagrad accumulators, plus Adam's
// step counter) lives in "<var>/slot/<name>" graph variables, so
// checkpoints capture the full optimizer trajectory and resumed runs
// stay bit-identical for every optimizer. Finally, the Into kernels
// (MatMulInto, ReduceInto, SoftmaxInto) never read their destination
// and therefore forbid aliasing it with an input; the debug guard
// tensor.AliasChecks turns violations into panics instead of silent
// corruption (the tensor test binary enables it for every kernel
// invocation).
//
// # Fused attention
//
// tensor.FusedAttention executes the scaled-dot-product attention
// chain Softmax(Q·Kᵀ·scale)·V as one streaming kernel: for each of
// the G·S output rows (parallelized over the shared pool like any
// other kernel) it computes the row of scores, its softmax, and the
// probability-weighted sum of V in a scratch buffer of O(S) floats —
// the (G,S,S) score and probability matrices are never materialized,
// which removes the naive chain's dominant memory traffic
// (BENCH_kernels.json tracks the fused-over-naive ratio and the arena
// bytes eliminated). The kernel replays the exact float sequence of
// the unfused chain — same dot order, one scale rounding, the
// softmax's max/exp/sum/normalize in the same ascending order — so
// fused and unfused are bit-identical at every intra-op width,
// including rows containing ±Inf masks.
//
// At the graph level, ops.NaiveAttention builds the unfused reference
// chain and graph.FuseAttention (joining pass 4 of graph.Optimize,
// ahead of epilogue fusion, which would otherwise absorb the chain's
// scale) pattern-matches BatchMatMul→scalar-Mul→Softmax→BatchMatMul
// with a rank-3 (0,2,1) transpose on K and rewrites it in place to one
// FusedAttention node, under the same gates as epilogue fusion
// (single-reader intermediates, no Impure/Mutator, no kept/fetched
// nodes). Training graphs fuse before gradient construction: the fused
// op's Grad recomputes the probability matrix in its own backward
// subgraph, so dQ/dK/dV match the naive chain's autodiff bitwise. The
// attention workload (internal/models/attention: a multi-head
// self-attention encoder block with residual/layer-norm structure and
// a position-wise FFN on a synthetic sequence-reversal task) drives
// the fused path end to end through training, the determinism harness,
// serve, dist, and fuse; `-heads N` overrides its head count.
//
// # Serving architecture
//
// The standard model interface is request-driven: every workload
// publishes a core.Signature per mode (named input placeholders and
// named output nodes, each with an explicit batch axis) and implements
// the core.Inferencer / core.Trainer capabilities; self-feeding
// profile steps go through the core.Step adapter. On top of that
// contract, internal/serve provides the concurrent serving subsystem:
// serve.Engine owns a pool of single-goroutine runtime.Sessions over
// one shared graph, coalesces concurrent single-example requests into
// dynamic micro-batches (MaxBatch/MaxDelay) executed as one compiled-
// plan run each, supports context cancellation, and keeps an atomic
// stats block (throughput, p50/p99 latency, batch fill). serve.Server
// and `fathom serve` expose any registered workload over HTTP/JSON
// (POST /v1/models/<name>:infer, GET /v1/models, /healthz, /stats).
// /stats additionally carries the shared worker pool's busy/spawned
// gauges and each engine's lease claim, the signals a load-shedding
// layer keys off.
//
// # Serving robustness
//
// Nothing in the serving path queues unboundedly. Each engine runs two
// priority lanes — interactive (the default) and batch — each a
// bounded admission queue (Options.QueueLen); a full lane fails fast
// with serve.ErrOverloaded instead of blocking. A request's deadline
// budget is the earlier of its context deadline and the engine's
// Options.DefaultDeadline; the engine tracks an EWMA of batch
// execution latency and sheds a request — at admission or at dispatch
// — when its remaining budget cannot cover the estimated queue wait
// plus one execution. The estimate counts queued-batches-ahead (only
// interactive traffic for interactive requests: the dispatcher always
// drains that lane first, so batch traffic queues, sheds, and expires
// first) and doubles when the shared worker pool is saturated, which
// is how co-tenant engines on one pool shed cooperatively. Requests
// whose deadline has already died fail with serve.ErrExpired and never
// occupy a batch slot — cancelled and expired requests are filtered
// at dispatch and again before packing, so they cannot skew batch-fill
// stats. A rationed probe admission (one per 100ms past the budget
// gate) keeps the estimate self-healing when it spikes above every
// deadline. The HTTP layer maps the taxonomy to a machine-readable
// error contract ({"error", "code"}: invalid_input 400, overloaded 503
// + Retry-After, deadline_exceeded 504, closed 503), and /stats
// reports the admission counters (rejected/shed/expired), queue-depth
// and queue-wait gauges, and per-lane p50/p99/p999.
//
// internal/loadgen is the open-loop traffic harness that proves the
// contract: seeded Poisson or uniform arrivals at a target QPS,
// submitted on schedule regardless of completion (closed-loop clients
// hide overload by self-throttling), with a mixed-priority lane split.
// `fathom loadtest` measures closed-loop capacity, then drives
// 0.5×/1×/2× of it and persists goodput (completions inside the
// deadline), shed rate, and per-lane latency quantiles as
// BENCH_serve.json — the serving perf trajectory across PRs.
//
// # Distributed training
//
// internal/dist adds the third scaling axis: data-parallel training of
// N model replicas, each with its own graph and session, driven by
// `fathom train -replicas N`. A global training step is decomposed
// into a canonical grid of micro-batches ("chunks", dataset.Partition)
// whose size is fixed per run — independent of the replica count —
// and replicas own contiguous ascending chunk ranges. Per chunk, a
// replica reseeds its session RNG and draws its batch from a generator
// keyed by dataset.ChunkSeed(seed, step, chunk) (core.TrainSampler),
// then fetches the loss and raw parameter gradients through the
// gradient/update surface nn.BuildTraining records (nn.TrainPlan) —
// forward and backward only, no variable is touched. The all-reduce
// then combines the per-chunk gradients of each parameter in fixed
// ascending-replica, ascending-chunk float32 order — exactly ascending
// order over the chunk grid — scales by 1/chunks, and every replica
// applies the identical combined update through TrainPlan's
// fed-gradient placeholders, keeping all replica variables bitwise
// identical forever.
//
// The resulting contract extends the determinism harness: for a fixed
// global batch, chunk count and seed, losses and final variables are
// bit-identical across replica counts {1, 2, 4} and across replica ×
// intra-op widths — the replica count changes only the partition,
// never the math. Replicas execute concurrently as clients of the
// shared worker pool under the usual rules (leases,
// caller-participates-first, degrade-to-serial on exhaustion), so
// execution goroutines stay bounded by the pool size; dist checkpoints
// (a step header plus the variable checkpoint) restore at any replica
// count dividing the chunk grid with bit-identical continuation.
// `fathom train` reports achieved wall speedup against the Amdahl
// bound of the run's own phase structure (profiling.TrainScaling) and
// live-checks the bit-identity invariant.
//
// # Horizontally fused training
//
// internal/fuse adds the HFTA-style fourth scaling axis: instead of
// running K training instances side by side (K graphs, K sessions, K
// GEMMs per layer), fuse.New builds one array-batched graph in which
// every parameter, gradient, and optimizer update is stacked along a
// leading fusion axis of size K, so a single batched matrix multiply
// (ops.BatchMatMul) — and a single arena, plan, and session — serves
// all K trainees at once. The transform is graph-level and works on
// any core.Trainer workload: shared structure (placeholders,
// constants, non-parameter state, the RNG source lane) is computed
// once and broadcast, per-trainee structure is lifted onto the fusion
// axis, and the impure lane's schedule order is preserved so one
// shared dropout mask keeps RNG draw-count parity with a standalone
// run. Trainees may diverge only through per-trainee learning-rate
// scales (Options.LRScales), which is the hyperparameter-search use
// case: K learning rates explored for the price of roughly one run.
//
// The fused determinism contract extends the harness once more: each
// trainee's loss trajectory and final variables are bit-identical to
// a standalone run with the same seed, chunk grid, and learning-rate
// scale, across widths K ∈ {1, 2, 4} × intra-op {1, 4}. This holds by
// construction — fused kernels iterate the fusion axis invoking the
// standalone kernel on contiguous per-trainee views, and the chunk
// protocol (reseed, ChunkSeed sampling, ascending-chunk float32
// gradient accumulation, fed-gradient apply) is shared with
// internal/dist verbatim. `fathom train -fuse K` trains the fused
// array next to the data-parallel baseline and persists both
// throughput trajectories as BENCH_train.json.
//
// # Adaptive pool leases
//
// Pool leases are occupancy-driven rather than static. Every tenant —
// plain sessions, serve engines ("engine/<model>"), dist trainers
// ("dist/<model>"), fused arrays ("fuse/<model>") — registers a named
// lease recording what it wants; while total wants fit the pool,
// everyone gets a full grant. When tenants oversubscribe the pool, a
// time-gated renegotiation on the TryRun path water-fills grants over
// each lease's measured demand (recent peak concurrency plus pressure
// from denied acquisitions) with a floor of one helper, so mixed
// tenants sharing one pool converge on their actual usage instead of
// their declared width and none starves (raced in CI by the
// mixed-tenant test: a serving engine and a fused trainer on one
// pool, both making progress, goroutines bounded). Grants are
// advisory caps on helper acquisition — degrade-to-serial still
// applies — and /stats reports per-tenant want/granted/active so the
// renegotiation is observable.
//
// # Observability
//
// internal/telemetry unifies the process's metrics, traces, and
// training-phase timings. The metrics registry is scrape-time only:
// every series is a reader (CounterFunc/GaugeFunc over atomics the
// subsystems already maintain, Histogram over the log-bucketed
// LogHistogram generalized out of serve's stats), so registration
// adds nothing to the request hot path. A serving process exposes the
// registry in Prometheus 0.0.4 text format at /metrics — serve
// admission/shed/latency families per model, shared worker-pool
// gauges, per-engine arena utilization, and dist/fuse training
// throughput — next to the JSON /stats endpoint (which also carries
// arena and queue-wait quantile blocks).
//
// Request tracing samples at admission: `fathom serve -tracesample N`
// traces every Nth request end to end, the decision made exactly once
// per request and carried via context through queue wait, batch
// packing, and the run, so unsampled requests never touch a trace. A
// sampled request yields a span tree — request, admission, queue,
// batch, run, and one child per executed op on its worker lane,
// reusing the runtime's Event capture — collected in a bounded ring
// and exported as Chrome trace-event JSON, either periodically to
// -tracedir or one-shot via /debug/trace (load chrome://tracing or
// Perfetto). -pprof mounts net/http/pprof under /debug/pprof/.
// Training gets the same treatment from the loop side: dist and fuse
// trainers record per-step sample/grad/reduce/apply phase timings in
// a fixed ring, scraped through the registry and printed as a phase
// table by `fathom train -trace`.
//
// The overhead contract is <2%: the full stack — registry populated
// plus tracing at the default 1/1000 — must stay within 2% of the
// bare engine on the BenchmarkServe workload, measured as CPU per
// request and enforced in CI (TELEMETRY_OVERHEAD_GATE). The measured
// budget behind the default rate: a traced request costs ~15µs of CPU
// for its ~50 spans, so 1/1000 amortizes below the noise floor while
// 1/10 costs a measurable ~18%. Tracing perturbs timings, never
// results — the determinism contract holds with telemetry on.
package repro
